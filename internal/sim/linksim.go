package sim

import (
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/obs"
	"github.com/libra-wlan/libra/internal/phy"
)

// LinkSim is the step-wise single-link simulator extracted from the original
// RunTimeline loop: one Tx/Rx link advancing segment by segment under an
// adaptation policy. The multi-AP discrete-event engine drives one LinkSim
// per station, interleaving segments of many links in simulation-time order;
// RunTimelineContext drives one to completion. Both paths execute the exact
// same arithmetic: with the default airtime share (1) and SNR offset (0) the
// adjustment hooks below are guarded no-ops, so a LinkSim-driven run is
// bit-identical to the historic single-link loop.
//
// A LinkSim is single-goroutine state; the engine guarantees each station is
// handled by at most one worker per event barrier.
type LinkSim struct {
	p   Params
	pol Policy
	clf core.Classifier
	cfg core.Config

	st       tlState
	res      TimelineResult
	elapsed  time.Duration
	segIndex int

	// share is the fraction of TDMA airtime granted to this link. The sole
	// occupant of an AP holds share 1, which skips the scaling entirely.
	share float64
	// offs is an SNR offset (dB) applied to the current segment's channel:
	// the engine models per-station impairments (blockage attenuation) and
	// inter-AP interference penalties as offsets over a frozen snapshot.
	// Zero skips the adjustment entirely.
	offs float64
}

// NewLinkSim creates a link simulator with full airtime and a clean channel.
// clf is consulted only by the LiBRA policy.
func NewLinkSim(p Params, pol Policy, clf core.Classifier) *LinkSim {
	return &LinkSim{p: p, pol: pol, clf: clf, cfg: p.Config(), share: 1}
}

// SetShare sets the TDMA airtime fraction granted to the link (0, 1].
// Delivered rates scale by the share; adaptation overheads do not — beam
// training and probe frames occupy dedicated airtime regardless of the data
// schedule.
func (ls *LinkSim) SetShare(f float64) { ls.share = f }

// SetSNROffsetDB sets the SNR offset (dB, usually negative) applied to every
// channel evaluation until changed. Measurements carry the offset too, so
// LiBRA's feature diffs observe it like a real channel change.
func (ls *LinkSim) SetSNROffsetDB(db float64) { ls.offs = db }

// SNROffsetDB returns the current offset.
func (ls *LinkSim) SNROffsetDB() float64 { return ls.offs }

// MCS returns the link's current modulation and coding scheme.
func (ls *LinkSim) MCS() phy.MCS { return ls.st.mcs }

// Beams returns the current Tx/Rx beam pair.
func (ls *LinkSim) Beams() (txBeam, rxBeam int) { return ls.st.txBeam, ls.st.rxBeam }

// Elapsed returns the simulated time consumed so far.
func (ls *LinkSim) Elapsed() time.Duration { return ls.elapsed }

// Result returns the accumulated multi-segment result.
func (ls *LinkSim) Result() TimelineResult { return ls.res }

// CurrentSNRdB evaluates the link's SNR on snap at the current beam pair,
// including the configured offset — the quantity the engine's handoff rule
// compares against alternative APs.
func (ls *LinkSim) CurrentSNRdB(snap *channel.Snapshot) float64 {
	snr := snap.SNRdB(ls.st.txBeam, ls.st.rxBeam)
	if ls.offs != 0 {
		snr += ls.offs
	}
	return snr
}

// ChargeOverhead consumes dur of simulated time at zero delivered rate —
// the engine charges AP handoffs (reassociation sweep plus signaling) this
// way before the next segment runs.
func (ls *LinkSim) ChargeOverhead(dur time.Duration) { ls.emit(dur, 0) }

// Rebootstrap retrains the link from scratch on snap: best beam pair, best
// MCS, fresh reference measurement. The engine calls it when a station hands
// off to a new AP, whose channel the old beam state says nothing about.
func (ls *LinkSim) Rebootstrap(snap *channel.Snapshot) { ls.bootstrap(snap) }

// bootstrap performs full training on snap (the first segment's state).
func (ls *LinkSim) bootstrap(snap *channel.Snapshot) {
	var snr float64
	ls.st.txBeam, ls.st.rxBeam, snr = snap.BestPair()
	if ls.offs != 0 {
		snr += ls.offs
	}
	ls.st.mcs, _ = phy.BestMCS(snr)
	ls.st.prevMeas = ls.measure(snap)
	ls.st.prevValid = true
}

// measure observes the current beam pair on snap with the offset applied to
// the power readings (RSS and SNR shift together; noise is unaffected).
func (ls *LinkSim) measure(snap *channel.Snapshot) channel.Measurement {
	m := snap.Measure(ls.st.txBeam, ls.st.rxBeam)
	if ls.offs != 0 {
		m.RSSdBm += ls.offs
		m.SNRdB += ls.offs
	}
	return m
}

// emit accounts one constant-rate stretch: the rate profile, delivered
// bytes, and elapsed time all advance together.
func (ls *LinkSim) emit(dur time.Duration, bps float64) {
	if dur <= 0 {
		return
	}
	if ls.share != 1 {
		bps *= ls.share
	}
	ls.res.Rate = append(ls.res.Rate, RateInterval{Dur: dur, Bps: bps})
	ls.res.Bytes += bps * dur.Seconds() / 8
	ls.elapsed += dur
}

// Segment advances the link through one channel segment: a break check at
// the boundary (with policy-driven adaptation when the current MCS died),
// then steady-state probing toward the best working MCS. It reports whether
// the segment opened with a link break. The first call bootstraps instead —
// full training on the initial state, as the paper's timelines do.
func (ls *LinkSim) Segment(snap *channel.Snapshot, dur time.Duration) bool {
	si := ls.segIndex
	ls.segIndex++
	if si == 0 {
		ls.bootstrap(snap)
	}

	remaining := dur
	cur := tableAt(snap, ls.st.txBeam, ls.st.rxBeam, ls.offs)
	tr := ls.p.Trace
	broke := false

	if si > 0 && !working(cur[ls.st.mcs]) {
		// Link break at the segment boundary.
		broke = true
		ls.res.Breaks++
		obsTimelineBreaks.Inc()
		if tr.Enabled() {
			tr.Event(simTime(ls.elapsed), "break",
				obs.Fint("segment", int64(si)), obs.Fint("mcs", int64(ls.st.mcs)))
		}
		action := decideTimeline(ls.pol, ls.clf, ls.cfg, snap, &ls.st, &cur, ls.p, ls.offs)
		if tr.Enabled() && int(action) < len(actionNames) {
			tr.Event(simTime(ls.elapsed), "verdict",
				obs.F("action", actionNames[action]))
		}
		rec, executed := applyAdaptation(action, snap, &ls.st, &cur, ls.p, ls.emit, &remaining, ls.offs)
		ls.res.TotalRecoveryDelay += rec
		ls.res.Actions = append(ls.res.Actions, executed)
		if tr.Enabled() && int(executed) < len(actionNames) {
			kind := "ra_search"
			if executed == dataset.ActBA {
				kind = "rebeam"
			}
			tr.Event(simTime(ls.elapsed), kind,
				obs.Ffloat("recovery_s", rec.Seconds()), obs.Fint("mcs", int64(ls.st.mcs)))
		}
	}

	// Steady state within the segment: periodic probing walks the MCS
	// toward the best working MCS on the current pair.
	target, targetTh := bestWorking(&cur)
	stepTime := time.Duration(ls.cfg.ProbeInterval) * ls.p.FAT
	for ls.st.mcs != target && remaining > 0 {
		d := stepTime
		if d > remaining {
			d = remaining
		}
		ls.emit(d, cur[ls.st.mcs])
		remaining -= d
		if ls.st.mcs < target {
			ls.st.mcs++
		} else {
			ls.st.mcs--
		}
	}
	if remaining > 0 {
		ls.emit(remaining, targetTh)
		ls.st.mcs = target
	}
	ls.st.prevMeas = ls.measure(snap)
	ls.st.prevValid = true
	return broke
}
