package sim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/trace"
)

func TestParamsValidate(t *testing.T) {
	if err := stdParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero BAOverhead", func(p *Params) { p.BAOverhead = 0 }},
		{"negative BAOverhead", func(p *Params) { p.BAOverhead = -time.Millisecond }},
		{"zero FAT", func(p *Params) { p.FAT = 0 }},
		{"negative FlowDur", func(p *Params) { p.FlowDur = -time.Second }},
	}
	for _, tc := range cases {
		p := stdParams()
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestRunRejectsBadScenarios(t *testing.T) {
	ctx := context.Background()
	e := handEntry()
	pools := testPools(t)
	tl := pools.RandomTimeline(trace.Mixed, rand.New(rand.NewSource(7)))
	opt := Options{Params: stdParams(), Policy: BAFirst}

	cases := []struct {
		name string
		sc   Scenario
		opt  Options
	}{
		{"neither entry nor timeline", Scenario{}, opt},
		{"both entry and timeline", Scenario{Entry: e, Timeline: tl}, opt},
		{"entry without FlowDur", Scenario{Entry: e},
			Options{Params: Params{BAOverhead: time.Millisecond, FAT: time.Millisecond}}},
		{"failover without table", Scenario{Entry: e},
			Options{Params: stdParams(), Variant: VariantFailover}},
		{"failover on a timeline", Scenario{Timeline: tl},
			Options{Params: stdParams(), Variant: VariantFailover, Failover: new([phy.NumMCS]float64)}},
		{"rx-initiated without classifier", Scenario{Entry: e},
			Options{Params: stdParams(), Variant: VariantRxInitiated}},
		{"unknown variant", Scenario{Entry: e},
			Options{Params: stdParams(), Variant: Variant(99)}},
	}
	for _, tc := range cases {
		if _, err := Run(ctx, tc.sc, tc.opt); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// FlowDur is only a concern for entry scenarios.
	if _, err := Run(ctx, Scenario{Timeline: tl},
		Options{Params: Params{BAOverhead: time.Millisecond, FAT: time.Millisecond}, Policy: BAFirst}); err != nil {
		t.Errorf("timeline without FlowDur rejected: %v", err)
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Scenario{Entry: handEntry()}, Options{Params: stdParams(), Policy: BAFirst})
	if err == nil {
		t.Fatal("cancelled context not observed")
	}
}

// The deprecated wrappers and the unified Run must agree exactly — the
// wrappers are documented as pure delegations.

func TestRunEntryParity(t *testing.T) {
	e := handEntry()
	p := stdParams()
	for _, pol := range []Policy{OracleData, OracleDelay, RAFirst, BAFirst, LiBRA} {
		var clf fixedClassifier
		if pol == LiBRA {
			clf = fixedClassifier{dataset.ActBA}
		}
		legacy := RunEntry(e, p, pol, clf)
		res, err := Run(context.Background(), Scenario{Entry: e},
			Options{Params: p, Policy: pol, Classifier: clf})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if legacy != res.Outcome {
			t.Errorf("%v: wrapper %+v != Run %+v", pol, legacy, res.Outcome)
		}
	}
}

func TestRunFailoverParity(t *testing.T) {
	e := handEntry()
	p := stdParams()
	fo := &[phy.NumMCS]float64{2: 1.3e9, 1: 0.8e9}
	legacy := RunEntryFailover(e, fo, p)
	res, err := Run(context.Background(), Scenario{Entry: e},
		Options{Params: p, Variant: VariantFailover, Failover: fo})
	if err != nil {
		t.Fatal(err)
	}
	if legacy != res.Outcome {
		t.Errorf("wrapper %+v != Run %+v", legacy, res.Outcome)
	}
}

func TestRunRxInitiatedParity(t *testing.T) {
	e := handEntry()
	p := stdParams()
	for _, act := range []dataset.Action{dataset.ActBA, dataset.ActRA, dataset.ActNA} {
		clf := fixedClassifier{act}
		legacy := RunEntryRxInitiated(e, p, clf)
		res, err := Run(context.Background(), Scenario{Entry: e},
			Options{Params: p, Variant: VariantRxInitiated, Classifier: clf})
		if err != nil {
			t.Fatalf("%v: %v", act, err)
		}
		if legacy != res.Outcome {
			t.Errorf("%v: wrapper %+v != Run %+v", act, legacy, res.Outcome)
		}
	}
}

func TestRunTimelineParity(t *testing.T) {
	pools := testPools(t)
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(40 + seed))
		tl := pools.RandomTimeline(trace.Mixed, rng)
		legacy := RunTimeline(tl, stdParams(), BAFirst, nil)
		res, err := Run(context.Background(), Scenario{Timeline: tl},
			Options{Params: stdParams(), Policy: BAFirst})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, res.Timeline) {
			t.Errorf("seed %d: wrapper and Run diverge", seed)
		}
	}
}
