package sim

import (
	"context"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/phy"
)

// Failover-beam policy, approximating the non-standard-compliant MOCA
// approach the paper discusses in §8: alongside the primary beam pair the
// device maintains a failover pair (the best pair whose Tx sector differs
// from the primary's, captured at the last full sweep). On a break it
// switches to the failover and runs RA there — one cheap switch instead of
// a sweep — and only falls back to a full BA + RA when the failover cannot
// restore the link either.
//
// The paper's critique (backed by their MSWiM'20 study) is that a failover
// captured at the initial state does not survive angular displacement: both
// the primary and the stale failover point the old way. The tests and the
// ablation bench quantify exactly that.

// FailoverSwitchTime is the cost of retuning to an already-known beam pair
// (electronic switching plus one confirmation exchange).
const FailoverSwitchTime = 100 * time.Microsecond

// FailoverSeparation is the minimum Tx-sector distance between the primary
// and the failover. Adjacent sectors share the same physical path (their
// main lobes overlap), so a useful failover must be spatially diverse —
// typically a reflection.
const FailoverSeparation = 6

// FailoverPair finds the failover beam pair on a snapshot: the best pair
// with BOTH sectors at least FailoverSeparation away from the primary's.
// Separating only the Tx sector is not enough — the wide main lobes leak
// enough energy along the primary path that the "different" sector still
// rides the same ray; a genuine backup must redirect both ends onto a
// reflection.
func FailoverPair(snap *channel.Snapshot, primaryTx, primaryRx int) (tx, rx int, snr float64) {
	sweep := snap.Sweep()
	snr = -1e18
	near := func(a, b int) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d < FailoverSeparation
	}
	for t := range sweep {
		if near(t, primaryTx) {
			continue
		}
		for r := range sweep[t] {
			if near(r, primaryRx) {
				continue
			}
			if sweep[t][r] > snr {
				snr, tx, rx = sweep[t][r], t, r
			}
		}
	}
	return tx, rx, snr
}

// RunEntryFailover replays one break under the failover policy. The entry's
// FailoverTh table must be populated (BuildFailoverTable does this for
// snapshot-backed scenarios); when it is zero the failover is treated as
// dead and the policy degenerates to RA-then-BA.
//
// Deprecated: use Run with Options{Variant: VariantFailover, Failover:
// failover}; this wrapper remains for source compatibility and panics on
// parameters Run would reject.
func RunEntryFailover(e *dataset.Entry, failover *[phy.NumMCS]float64, p Params) Outcome {
	res, err := Run(context.Background(), Scenario{Entry: e},
		Options{Params: p, Variant: VariantFailover, Failover: failover})
	if err != nil {
		panic(err)
	}
	return res.Outcome
}

// runEntryFailover is the failover-variant core behind Run.
func runEntryFailover(e *dataset.Entry, failover *[phy.NumMCS]float64, p Params) Outcome {
	var (
		elapsed time.Duration
		bytes   float64
		out     Outcome
	)
	flow := p.FlowDur
	dmax := core.Dmax(p.Config())
	add := func(b float64, d time.Duration) {
		remaining := flow - elapsed
		if remaining > 0 {
			if d <= remaining {
				bytes += b
			} else if d > 0 {
				bytes += b * float64(remaining) / float64(d)
			}
		}
		elapsed += d
	}

	// Switch to the failover pair and search rates there.
	add(0, FailoverSwitchTime)
	ra := raSearch(failover, e.InitMCS, p.FAT)
	out.UsedRA = true
	if ra.found {
		add(ra.searchBytes, time.Duration(ra.probes)*p.FAT)
		out.RecoveryDelay = FailoverSwitchTime + time.Duration(ra.firstWorking)*p.FAT
		out.FinalMCS = ra.mcs
		settle(&bytes, &elapsed, flow, (*failover)[ra.mcs])
		out.Bytes = bytes
		return out
	}
	// Failover dead too: full BA + RA (charge everything).
	add(ra.searchBytes, time.Duration(ra.probes)*p.FAT)
	out.UsedBA = true
	add(0, p.BAOverhead)
	ra2 := raSearch(&e.BestBeamTh, e.InitMCS, p.FAT)
	if ra2.found {
		add(ra2.searchBytes, time.Duration(ra2.probes)*p.FAT)
		out.RecoveryDelay = FailoverSwitchTime + time.Duration(ra.probes)*p.FAT +
			p.BAOverhead + time.Duration(ra2.firstWorking)*p.FAT
		out.FinalMCS, out.FinalOnBestBeam = ra2.mcs, true
		settle(&bytes, &elapsed, flow, e.BestBeamTh[ra2.mcs])
	} else {
		out.RecoveryDelay = dmax
	}
	out.Bytes = bytes
	return out
}

// FailoverStudy compares the failover policy against LiBRA over entries for
// which failover tables are supplied, returning mean recovery delays.
func FailoverStudy(entries []*dataset.Entry, tables []*[phy.NumMCS]float64, p Params, clf core.Classifier) (failoverMean, libraMean time.Duration) {
	if len(entries) == 0 || len(entries) != len(tables) {
		return 0, 0
	}
	var f, l time.Duration
	for i, e := range entries {
		f += RunEntryFailover(e, tables[i], p).RecoveryDelay
		l += RunEntry(e, p, LiBRA, clf).RecoveryDelay
	}
	n := time.Duration(len(entries))
	return f / n, l / n
}
