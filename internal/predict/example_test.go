package predict_test

import (
	"fmt"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/predict"
)

func ExampleMarkovPredictor() {
	// A person crosses the line of sight on a fixed loop: the link
	// alternates between needing a sweep and recovering on its own.
	p := predict.NewMarkovPredictor(2)
	pattern := []dataset.Action{dataset.ActBA, dataset.ActNA}
	for i := 0; i < 20; i++ {
		p.Observe(pattern[i%2])
	}
	next, conf := p.Predict()
	fmt.Printf("next: %v (confidence %.0f%%)\n", next, conf*100)
	// Output: next: BA (confidence 100%)
}

func ExampleAccuracy() {
	// Online next-step accuracy over a period-2 pattern.
	var seq []dataset.Action
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			seq = append(seq, dataset.ActBA)
		} else {
			seq = append(seq, dataset.ActRA)
		}
	}
	acc, covered := predict.Accuracy(seq, 2)
	fmt.Printf("accuracy %.0f%% over %.0f%% of events\n", acc*100, covered*100)
	// Output: accuracy 100% over 92% of events
}
