// Package predict implements the paper's stated future-work direction (§7):
// "longer observation windows may allow the transmitter to learn blockage
// patterns and make better decisions in the future. We believe that learning
// link status patterns over longer periods of time is an interesting avenue
// for future investigation."
//
// It provides an order-k Markov predictor over the sequence of adaptation
// actions a link experienced. When the recent history indicates a recurring
// pattern (a person walking a periodic path through the line of sight, a
// duty-cycled interferer), the predictor anticipates the next required
// mechanism before the break happens, letting a proactive LiBRA pre-arm the
// sweep and shave the reaction window off the recovery delay.
package predict

import (
	"fmt"
	"strings"

	"github.com/libra-wlan/libra/internal/dataset"
)

// MarkovPredictor is an order-k Markov chain over adaptation actions.
type MarkovPredictor struct {
	// Order is the history length conditioning each prediction (default 2
	// when zero at first Observe).
	Order int

	history []dataset.Action
	counts  map[string]*actionCounts
	total   int
}

// actionCounts tallies next-action observations for one context.
type actionCounts struct {
	n [3]int
}

func (c *actionCounts) add(a dataset.Action) { c.n[int(a)]++ }

func (c *actionCounts) best() (dataset.Action, float64) {
	total := c.n[0] + c.n[1] + c.n[2]
	if total == 0 {
		return dataset.ActNA, 0
	}
	best, bestN := dataset.ActNA, -1
	for a := dataset.ActBA; a <= dataset.ActNA; a++ {
		if c.n[int(a)] > bestN {
			best, bestN = a, c.n[int(a)]
		}
	}
	return best, float64(bestN) / float64(total)
}

// NewMarkovPredictor creates a predictor with the given order.
func NewMarkovPredictor(order int) *MarkovPredictor {
	if order <= 0 {
		order = 2
	}
	return &MarkovPredictor{Order: order, counts: map[string]*actionCounts{}}
}

// key encodes a history window.
func key(h []dataset.Action) string {
	var b strings.Builder
	for _, a := range h {
		b.WriteByte(byte('0' + int(a)))
	}
	return b.String()
}

// Observe appends the action taken at the latest link event and updates the
// transition statistics.
func (p *MarkovPredictor) Observe(a dataset.Action) {
	if p.counts == nil {
		p.counts = map[string]*actionCounts{}
	}
	if len(p.history) >= p.Order {
		k := key(p.history[len(p.history)-p.Order:])
		c := p.counts[k]
		if c == nil {
			c = &actionCounts{}
			p.counts[k] = c
		}
		c.add(a)
		p.total++
	}
	p.history = append(p.history, a)
	// Bound memory: the context map is what matters, not the raw history.
	if len(p.history) > 4*p.Order {
		p.history = p.history[len(p.history)-2*p.Order:]
	}
}

// Predict returns the most likely next action given the recent history and
// a confidence in [0, 1]. Confidence 0 means no evidence (unseen context).
func (p *MarkovPredictor) Predict() (dataset.Action, float64) {
	if len(p.history) < p.Order || p.counts == nil {
		return dataset.ActNA, 0
	}
	c := p.counts[key(p.history[len(p.history)-p.Order:])]
	if c == nil {
		return dataset.ActNA, 0
	}
	return c.best()
}

// Observations returns the number of transitions learned.
func (p *MarkovPredictor) Observations() int { return p.total }

// String summarizes the learned table.
func (p *MarkovPredictor) String() string {
	return fmt.Sprintf("markov(order=%d, contexts=%d, observations=%d)",
		p.Order, len(p.counts), p.total)
}

// Accuracy replays an action sequence through a fresh predictor of the given
// order and returns the online next-step prediction accuracy (predictions
// with zero confidence are skipped, as a deployment would fall back to
// reactive LiBRA there). It is the evaluation metric for the future-work
// study.
func Accuracy(seq []dataset.Action, order int) (acc float64, covered float64) {
	p := NewMarkovPredictor(order)
	correct, predicted := 0, 0
	for _, a := range seq {
		if pred, conf := p.Predict(); conf > 0 {
			predicted++
			if pred == a {
				correct++
			}
		}
		p.Observe(a)
	}
	if predicted == 0 {
		return 0, 0
	}
	return float64(correct) / float64(predicted), float64(predicted) / float64(len(seq))
}
