package predict

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/libra-wlan/libra/internal/dataset"
)

func TestLearnsPeriodicBlockage(t *testing.T) {
	// A person crossing the LOS on a fixed loop: BA, NA, BA, NA, ...
	p := NewMarkovPredictor(2)
	seq := []dataset.Action{}
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			seq = append(seq, dataset.ActBA)
		} else {
			seq = append(seq, dataset.ActNA)
		}
	}
	for _, a := range seq {
		p.Observe(a)
	}
	// After NA, BA the pattern continues with NA.
	pred, conf := p.Predict()
	want := seq[len(seq)%2] // the next element of the alternation
	if pred != want || conf < 0.9 {
		t.Errorf("predicted %v (conf %v), want %v", pred, conf, want)
	}
}

func TestOnlineAccuracyPeriodic(t *testing.T) {
	var seq []dataset.Action
	pattern := []dataset.Action{dataset.ActBA, dataset.ActNA, dataset.ActRA, dataset.ActNA}
	for i := 0; i < 100; i++ {
		seq = append(seq, pattern[i%len(pattern)])
	}
	acc, covered := Accuracy(seq, 2)
	if acc < 0.95 {
		t.Errorf("periodic accuracy = %v", acc)
	}
	if covered < 0.8 {
		t.Errorf("coverage = %v", covered)
	}
}

func TestRandomSequenceLowConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var seq []dataset.Action
	for i := 0; i < 300; i++ {
		seq = append(seq, dataset.Action(rng.Intn(3)))
	}
	acc, _ := Accuracy(seq, 2)
	// Random 3-way sequence: accuracy near chance, far below the periodic
	// case. (The most frequent class gives ~1/3; allow slack.)
	if acc > 0.55 {
		t.Errorf("random-sequence accuracy suspiciously high: %v", acc)
	}
}

func TestColdStart(t *testing.T) {
	p := NewMarkovPredictor(3)
	if _, conf := p.Predict(); conf != 0 {
		t.Error("cold predictor should have zero confidence")
	}
	p.Observe(dataset.ActBA)
	p.Observe(dataset.ActRA)
	if _, conf := p.Predict(); conf != 0 {
		t.Error("under-filled history should have zero confidence")
	}
}

func TestUnseenContext(t *testing.T) {
	p := NewMarkovPredictor(2)
	for i := 0; i < 10; i++ {
		p.Observe(dataset.ActNA)
	}
	// Force a never-seen context.
	p.Observe(dataset.ActBA)
	p.Observe(dataset.ActRA)
	if _, conf := p.Predict(); conf != 0 {
		t.Error("unseen context should have zero confidence")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var p MarkovPredictor
	p.Order = 1
	p.Observe(dataset.ActBA)
	p.Observe(dataset.ActBA)
	p.Observe(dataset.ActBA)
	pred, conf := p.Predict()
	if pred != dataset.ActBA || conf != 1 {
		t.Errorf("constant stream: %v (%v)", pred, conf)
	}
}

func TestHistoryBounded(t *testing.T) {
	p := NewMarkovPredictor(2)
	for i := 0; i < 10000; i++ {
		p.Observe(dataset.ActNA)
	}
	if len(p.history) > 8 {
		t.Errorf("history grew to %d", len(p.history))
	}
	if p.Observations() != 9998 {
		t.Errorf("observations = %d", p.Observations())
	}
}

func TestString(t *testing.T) {
	p := NewMarkovPredictor(2)
	if !strings.Contains(p.String(), "order=2") {
		t.Errorf("String = %q", p.String())
	}
}

func TestAccuracyEmptyAndShort(t *testing.T) {
	if acc, cov := Accuracy(nil, 2); acc != 0 || cov != 0 {
		t.Error("empty sequence")
	}
	if acc, cov := Accuracy([]dataset.Action{dataset.ActBA}, 2); acc != 0 || cov != 0 {
		t.Error("too-short sequence")
	}
}

func TestHigherOrderCapturesLongerPatterns(t *testing.T) {
	// Pattern of period 3 with an ambiguous bigram: order 1 confuses it,
	// order 2 nails it. Sequence: BA, BA, NA, BA, BA, NA, ...
	var seq []dataset.Action
	pattern := []dataset.Action{dataset.ActBA, dataset.ActBA, dataset.ActNA}
	for i := 0; i < 120; i++ {
		seq = append(seq, pattern[i%3])
	}
	acc1, _ := Accuracy(seq, 1)
	acc2, _ := Accuracy(seq, 2)
	if acc2 <= acc1 {
		t.Errorf("order-2 accuracy %v not above order-1 %v", acc2, acc1)
	}
	if acc2 < 0.95 {
		t.Errorf("order-2 accuracy = %v", acc2)
	}
}
