// Package geom provides the 2-D computational geometry used by the 60 GHz
// indoor channel simulator: vectors, line segments, ray casting, and
// mirror-image reflections for the image-method ray tracer.
//
// All coordinates are in meters. Angles are in radians unless a function name
// says otherwise.
package geom

import "math"

// Vec is a 2-D point or direction vector.
type Vec struct {
	X, Y float64
}

// V is shorthand for constructing a Vec.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the 3-D cross product of v and w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// LenSq returns the squared length of v, avoiding a sqrt.
func (v Vec) LenSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// Norm returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec) Norm() Vec {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Angle returns the angle of v measured from the +X axis in (-pi, pi].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Rotate returns v rotated counterclockwise by theta radians.
func (v Vec) Rotate(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// FromAngle returns the unit vector pointing at angle theta from +X.
func FromAngle(theta float64) Vec {
	s, c := math.Sincos(theta)
	return Vec{c, s}
}

// AngleBetween returns the unsigned angle in [0, pi] between v and w.
func AngleBetween(v, w Vec) float64 {
	d := v.Norm().Dot(w.Norm())
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	return math.Acos(d)
}

// WrapAngle normalizes an angle to (-pi, pi].
func WrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }

// Segment is a line segment between two points, typically a wall section.
type Segment struct {
	A, B Vec
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Vec) Segment { return Segment{A: a, B: b} }

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Dir returns the unit direction vector from A to B.
func (s Segment) Dir() Vec { return s.B.Sub(s.A).Norm() }

// Normal returns a unit normal of the segment (rotated +90 degrees from Dir).
func (s Segment) Normal() Vec {
	d := s.Dir()
	return Vec{-d.Y, d.X}
}

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Vec {
	return Vec{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// Mirror returns p reflected across the infinite line through the segment.
// This is the image-source construction used by the ray tracer.
func (s Segment) Mirror(p Vec) Vec {
	d := s.B.Sub(s.A)
	t := p.Sub(s.A).Dot(d) / d.LenSq()
	foot := s.A.Add(d.Scale(t))
	return foot.Add(foot.Sub(p))
}

// eps is the geometric tolerance for intersection tests.
const eps = 1e-9

// Intersect reports whether segments s and t intersect, and if so returns the
// parametric position u in [0,1] along s of the intersection point.
func (s Segment) Intersect(t Segment) (u float64, ok bool) {
	r := s.B.Sub(s.A)
	d := t.B.Sub(t.A)
	denom := r.Cross(d)
	if math.Abs(denom) < eps {
		return 0, false // parallel or collinear: treat as non-intersecting
	}
	qp := t.A.Sub(s.A)
	u = qp.Cross(d) / denom
	v := qp.Cross(r) / denom
	if u < -eps || u > 1+eps || v < -eps || v > 1+eps {
		return 0, false
	}
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	return u, true
}

// IntersectStrict is like Intersect but excludes intersections that occur
// within tol (parametric) of either endpoint of s. It is used to avoid a ray
// "hitting" the wall it just reflected from.
func (s Segment) IntersectStrict(t Segment, tol float64) (u float64, ok bool) {
	u, ok = s.Intersect(t)
	if !ok {
		return 0, false
	}
	if u < tol || u > 1-tol {
		return 0, false
	}
	return u, true
}

// PointAt returns the point at parametric position u along the segment.
func (s Segment) PointAt(u float64) Vec {
	return s.A.Add(s.B.Sub(s.A).Scale(u))
}

// DistToPoint returns the minimum distance from point p to the segment.
func (s Segment) DistToPoint(p Vec) float64 {
	d := s.B.Sub(s.A)
	l2 := d.LenSq()
	if l2 == 0 {
		return s.A.Dist(p)
	}
	t := p.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.A.Add(d.Scale(t)).Dist(p)
}

// Circle is a disc obstacle, used to model a human blocker's torso cross
// section at antenna height.
type Circle struct {
	Center Vec
	Radius float64
}

// IntersectsSegment reports whether the circle overlaps segment s, along with
// the chord length of the overlap (how much of the path passes through the
// disc). A longer chord means a more central, more attenuating blockage.
func (c Circle) IntersectsSegment(s Segment) (chord float64, ok bool) {
	d := s.B.Sub(s.A)
	f := s.A.Sub(c.Center)
	a := d.LenSq()
	if a == 0 {
		return 0, false
	}
	b := 2 * f.Dot(d)
	cc := f.LenSq() - c.Radius*c.Radius
	disc := b*b - 4*a*cc
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	t1 := (-b - sq) / (2 * a)
	t2 := (-b + sq) / (2 * a)
	// Clamp the intersection interval to the segment.
	if t1 < 0 {
		t1 = 0
	}
	if t2 > 1 {
		t2 = 1
	}
	if t2 <= t1 {
		return 0, false
	}
	return (t2 - t1) * math.Sqrt(a), true
}
