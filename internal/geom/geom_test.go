package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func almostVec(a, b Vec) bool { return almost(a.X, b.X) && almost(a.Y, b.Y) }

func TestVecBasicOps(t *testing.T) {
	a, b := V(1, 2), V(3, -4)
	if got := a.Add(b); !almostVec(got, V(4, -2)) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !almostVec(got, V(-2, 6)) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); !almostVec(got, V(2, 4)) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); !almost(got, 3-8) {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); !almost(got, -4-6) {
		t.Errorf("Cross = %v", got)
	}
	if got := b.Len(); !almost(got, 5) {
		t.Errorf("Len = %v", got)
	}
	if got := b.LenSq(); !almost(got, 25) {
		t.Errorf("LenSq = %v", got)
	}
	if got := V(0, 0).Dist(b); !almost(got, 5) {
		t.Errorf("Dist = %v", got)
	}
}

func TestNorm(t *testing.T) {
	if got := V(3, 4).Norm(); !almost(got.Len(), 1) {
		t.Errorf("Norm length = %v", got.Len())
	}
	// Zero vector stays zero rather than producing NaN.
	if got := V(0, 0).Norm(); got.X != 0 || got.Y != 0 {
		t.Errorf("Norm(0) = %v", got)
	}
}

func TestAngleAndFromAngle(t *testing.T) {
	cases := []struct {
		v    Vec
		want float64
	}{
		{V(1, 0), 0},
		{V(0, 1), math.Pi / 2},
		{V(-1, 0), math.Pi},
		{V(0, -1), -math.Pi / 2},
	}
	for _, c := range cases {
		if got := c.v.Angle(); !almost(got, c.want) {
			t.Errorf("Angle(%v) = %v, want %v", c.v, got, c.want)
		}
		if got := FromAngle(c.want); !almostVec(got, c.v) {
			t.Errorf("FromAngle(%v) = %v, want %v", c.want, got, c.v)
		}
	}
}

func TestRotate(t *testing.T) {
	if got := V(1, 0).Rotate(math.Pi / 2); !almostVec(got, V(0, 1)) {
		t.Errorf("Rotate 90 = %v", got)
	}
	if got := V(1, 0).Rotate(math.Pi); !almostVec(got, V(-1, 0)) {
		t.Errorf("Rotate 180 = %v", got)
	}
}

func TestRotatePreservesLength(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 || math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) {
			return true
		}
		v := V(x, y)
		return math.Abs(v.Rotate(theta).Len()-v.Len()) < 1e-6*(1+v.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleBetween(t *testing.T) {
	if got := AngleBetween(V(1, 0), V(0, 1)); !almost(got, math.Pi/2) {
		t.Errorf("AngleBetween = %v", got)
	}
	if got := AngleBetween(V(1, 0), V(-1, 0)); !almost(got, math.Pi) {
		t.Errorf("opposite = %v", got)
	}
	if got := AngleBetween(V(2, 2), V(1, 1)); got > 1e-6 {
		t.Errorf("parallel = %v", got)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for _, c := range cases {
		if got := WrapAngle(c.in); !almost(got, c.want) {
			t.Errorf("WrapAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDegRadRoundtrip(t *testing.T) {
	for _, d := range []float64{0, 45, 90, -120, 359} {
		if got := Deg(Rad(d)); !almost(got, d) {
			t.Errorf("Deg(Rad(%v)) = %v", d, got)
		}
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Seg(V(0, 0), V(4, 0))
	if !almost(s.Len(), 4) {
		t.Errorf("Len = %v", s.Len())
	}
	if !almostVec(s.Dir(), V(1, 0)) {
		t.Errorf("Dir = %v", s.Dir())
	}
	if !almostVec(s.Normal(), V(0, 1)) {
		t.Errorf("Normal = %v", s.Normal())
	}
	if !almostVec(s.Midpoint(), V(2, 0)) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
	if !almostVec(s.PointAt(0.25), V(1, 0)) {
		t.Errorf("PointAt = %v", s.PointAt(0.25))
	}
}

func TestMirror(t *testing.T) {
	wall := Seg(V(0, 0), V(10, 0)) // the X axis
	if got := wall.Mirror(V(3, 2)); !almostVec(got, V(3, -2)) {
		t.Errorf("Mirror = %v", got)
	}
}

func TestMirrorInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		wall := Seg(V(rng.Float64()*10, rng.Float64()*10), V(rng.Float64()*10, rng.Float64()*10))
		if wall.Len() < 1e-6 {
			continue
		}
		p := V(rng.Float64()*10, rng.Float64()*10)
		back := wall.Mirror(wall.Mirror(p))
		if !almostVecTol(back, p, 1e-6) {
			t.Fatalf("mirror twice: %v -> %v", p, back)
		}
	}
}

func almostVecTol(a, b Vec, tol float64) bool {
	return math.Abs(a.X-b.X) < tol && math.Abs(a.Y-b.Y) < tol
}

func TestMirrorPreservesDistanceToLine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		wall := Seg(V(rng.Float64()*10, rng.Float64()*10), V(rng.Float64()*10, rng.Float64()*10))
		if wall.Len() < 1e-6 {
			continue
		}
		p := V(rng.Float64()*10, rng.Float64()*10)
		m := wall.Mirror(p)
		// The mirrored point is equidistant from any point on the wall line.
		for _, u := range []float64{0, 0.5, 1} {
			w := wall.PointAt(u)
			if math.Abs(w.Dist(p)-w.Dist(m)) > 1e-6 {
				t.Fatalf("mirror distance differs at u=%v", u)
			}
		}
	}
}

func TestIntersect(t *testing.T) {
	a := Seg(V(0, 0), V(4, 4))
	b := Seg(V(0, 4), V(4, 0))
	u, ok := a.Intersect(b)
	if !ok || !almost(u, 0.5) {
		t.Errorf("Intersect = %v, %v", u, ok)
	}
	// Non-crossing.
	c := Seg(V(10, 10), V(11, 11))
	if _, ok := a.Intersect(c); ok {
		t.Error("disjoint segments reported intersecting")
	}
	// Parallel.
	d := Seg(V(0, 1), V(4, 5))
	if _, ok := a.Intersect(d); ok {
		t.Error("parallel segments reported intersecting")
	}
	// Touching at endpoint counts as intersecting (within tolerance).
	e := Seg(V(4, 4), V(8, 4))
	if _, ok := a.Intersect(e); !ok {
		t.Error("endpoint touch not detected")
	}
}

func TestIntersectStrict(t *testing.T) {
	a := Seg(V(0, 0), V(4, 0))
	crossingEnd := Seg(V(0, -1), V(0, 1)) // crosses exactly at a's start
	if _, ok := a.IntersectStrict(crossingEnd, 1e-6); ok {
		t.Error("strict intersection should exclude endpoints")
	}
	crossingMid := Seg(V(2, -1), V(2, 1))
	if _, ok := a.IntersectStrict(crossingMid, 1e-6); !ok {
		t.Error("strict intersection missed a mid crossing")
	}
}

func TestDistToPoint(t *testing.T) {
	s := Seg(V(0, 0), V(4, 0))
	cases := []struct {
		p    Vec
		want float64
	}{
		{V(2, 3), 3},    // above the middle
		{V(-3, 4), 5},   // off the start
		{V(7, 4), 5},    // off the end
		{V(1, 0), 0},    // on the segment
		{V(4, 0.5), .5}, // near the end
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); !almost(got, c.want) {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment.
	d := Seg(V(1, 1), V(1, 1))
	if got := d.DistToPoint(V(4, 5)); !almost(got, 5) {
		t.Errorf("degenerate DistToPoint = %v", got)
	}
}

func TestCircleIntersectsSegment(t *testing.T) {
	c := Circle{Center: V(0, 0), Radius: 1}
	// Straight through the center: chord = diameter.
	chord, ok := c.IntersectsSegment(Seg(V(-5, 0), V(5, 0)))
	if !ok || !almost(chord, 2) {
		t.Errorf("diameter chord = %v, %v", chord, ok)
	}
	// Tangent-ish grazing.
	chord, ok = c.IntersectsSegment(Seg(V(-5, 0.8), V(5, 0.8)))
	if !ok || chord >= 2 || chord <= 0 {
		t.Errorf("grazing chord = %v, %v", chord, ok)
	}
	// Miss.
	if _, ok := c.IntersectsSegment(Seg(V(-5, 2), V(5, 2))); ok {
		t.Error("miss reported as hit")
	}
	// Segment fully inside.
	chord, ok = c.IntersectsSegment(Seg(V(-0.3, 0), V(0.3, 0)))
	if !ok || !almost(chord, 0.6) {
		t.Errorf("inside chord = %v, %v", chord, ok)
	}
	// Segment starting inside, ending outside.
	chord, ok = c.IntersectsSegment(Seg(V(0, 0), V(5, 0)))
	if !ok || !almost(chord, 1) {
		t.Errorf("half chord = %v, %v", chord, ok)
	}
}

func TestChordShrinksWithOffset(t *testing.T) {
	c := Circle{Center: V(0, 0), Radius: 1}
	prev := math.Inf(1)
	for _, off := range []float64{0, 0.25, 0.5, 0.75, 0.95} {
		chord, ok := c.IntersectsSegment(Seg(V(-5, off), V(5, off)))
		if !ok {
			t.Fatalf("offset %v missed", off)
		}
		if chord >= prev {
			t.Fatalf("chord not decreasing at offset %v", off)
		}
		prev = chord
	}
}
