// Package phy models the X60 single-carrier PHY layer (paper §4.1): 9 SC
// MCSs with data rates from 300 Mbps to 4.75 Gbps (similar to the 802.11ad
// SC PHY), a TDMA frame of 10 ms divided into 100 slots of 100 us, each slot
// carrying 92 CRC-protected codewords, and an SNR-dependent codeword error
// model from which the codeword delivery ratio (CDR) and MAC throughput are
// derived.
package phy

import (
	"fmt"
	"math"
	"math/rand"
)

// Frame structure constants (X60, §4.1).
const (
	// FrameDuration is the TDMA frame length in seconds (10 ms).
	FrameDuration = 10e-3
	// SlotsPerFrame is the number of slots in a frame.
	SlotsPerFrame = 100
	// SlotDuration is one slot in seconds (100 us).
	SlotDuration = FrameDuration / SlotsPerFrame
	// CodewordsPerSlot is the number of CRC-protected codewords per slot.
	CodewordsPerSlot = 92
	// CodewordsPerFrame is the number of codewords per 10 ms frame.
	CodewordsPerFrame = SlotsPerFrame * CodewordsPerSlot
)

// MCS identifies a modulation and coding scheme, 0..NumMCS-1.
type MCS int

// NumMCS is the number of supported MCSs (9 in X60's reference PHY).
const NumMCS = 9

// mcsInfo describes one MCS.
type mcsInfo struct {
	rateBps float64 // PHY data rate in bits/s
	snrReq  float64 // SNR (dB) at which CDR reaches 50%
	name    string
}

// mcsTable mirrors the X60 reference PHY: rates from 300 Mbps to 4.75 Gbps.
// The SNR requirements are spaced like 802.11ad SC MCS sensitivities
// (roughly 1.5-2.5 dB per step).
var mcsTable = [NumMCS]mcsInfo{
	{300e6, 6.0, "BPSK-1/4"},
	{950e6, 8.5, "BPSK-1/2"},
	{1580e6, 10.5, "BPSK-3/4"},
	{1900e6, 12.5, "QPSK-1/2"},
	{2380e6, 14.5, "QPSK-5/8"},
	{2850e6, 16.5, "QPSK-3/4"},
	{3170e6, 18.5, "16QAM-1/2"},
	{3800e6, 21.0, "16QAM-5/8"},
	{4750e6, 23.5, "16QAM-3/4"},
}

// Valid reports whether m is a defined MCS index.
func (m MCS) Valid() bool { return m >= 0 && m < NumMCS }

// RateBps returns the PHY data rate of m in bits per second.
func (m MCS) RateBps() float64 {
	if !m.Valid() {
		return 0
	}
	return mcsTable[m].rateBps
}

// RateMbps returns the PHY data rate of m in Mbit/s.
func (m MCS) RateMbps() float64 { return m.RateBps() / 1e6 }

// SNRReqDB returns the SNR at which the codeword delivery ratio of m crosses
// 50%.
func (m MCS) SNRReqDB() float64 {
	if !m.Valid() {
		return math.Inf(1)
	}
	return mcsTable[m].snrReq
}

// String returns a human-readable name like "MCS3 (QPSK-1/2, 1900 Mbps)".
func (m MCS) String() string {
	if !m.Valid() {
		return fmt.Sprintf("MCS%d (invalid)", int(m))
	}
	return fmt.Sprintf("MCS%d (%s, %.0f Mbps)", int(m), mcsTable[m].name, m.RateMbps())
}

// CodewordBytes returns the payload size of one codeword at m. Codeword
// airtime is fixed (a slot carries exactly CodewordsPerSlot codewords), so
// the size scales with the PHY rate, matching the X60's 180-1080 byte range
// across MCSs in spirit.
func (m MCS) CodewordBytes() float64 {
	return m.RateBps() * SlotDuration / CodewordsPerSlot / 8
}

// MaxMCS and MinMCS bound the MCS range.
const (
	MinMCS MCS = 0
	MaxMCS MCS = NumMCS - 1
)

// MaxRateBps is the PHY rate of the highest MCS (Thmax in the utility
// metric, Eqn. 1).
func MaxRateBps() float64 { return MaxMCS.RateBps() }

// cdrSlope controls how fast CDR transitions from 0 to 1 around the SNR
// requirement. ~1.3 dB from 10% to 90%: 60 GHz links have sharp waterfalls.
const cdrSlope = 3.4

// CDR returns the expected codeword delivery ratio of MCS m at the given
// SNR: a logistic waterfall centered on the MCS's SNR requirement.
func CDR(m MCS, snrDB float64) float64 {
	if !m.Valid() || math.IsInf(snrDB, -1) || math.IsNaN(snrDB) {
		return 0
	}
	return 1 / (1 + math.Exp(-cdrSlope*(snrDB-m.SNRReqDB())))
}

// SampleCDR draws an observed CDR for one frame: the number of delivered
// codewords out of CodewordsPerFrame, binomially distributed around the
// expected CDR. It uses a normal approximation, exact enough at n=9200.
func SampleCDR(m MCS, snrDB float64, rng *rand.Rand) float64 {
	obsCDRSamples.Inc()
	p := CDR(m, snrDB)
	// Below ~1e-5 the expected number of delivered codewords in a frame is
	// well under one: the observation is zero (and symmetrically at the
	// top).
	if p < 1e-5 {
		return 0
	}
	if p > 1-1e-5 {
		return 1
	}
	n := float64(CodewordsPerFrame)
	mean := n * p
	sd := math.Sqrt(n * p * (1 - p))
	k := mean + sd*rng.NormFloat64()
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k / n
}

// macEfficiency accounts for PHY/MAC header, CRC, and guard overhead.
const macEfficiency = 0.92

// Throughput returns the MAC layer throughput (bits/s) at MCS m given a
// codeword delivery ratio.
func Throughput(m MCS, cdr float64) float64 {
	return m.RateBps() * cdr * macEfficiency
}

// ExpectedThroughput returns the MAC throughput at the expected CDR for the
// given SNR.
func ExpectedThroughput(m MCS, snrDB float64) float64 {
	return Throughput(m, CDR(m, snrDB))
}

// Working MCS thresholds (paper §5.2): CDR > 10% and throughput > 150 Mbps
// (50% of the PHY data rate of the lowest MCS).
const (
	// WorkingMinCDR is the minimum CDR for an MCS to count as working.
	WorkingMinCDR = 0.10
	// WorkingMinThroughputBps is the minimum throughput for an MCS to
	// count as working.
	WorkingMinThroughputBps = 150e6
)

// IsWorking reports whether MCS m is "working" at the given CDR and
// throughput, per the paper's two-condition definition.
func IsWorking(cdr, throughputBps float64) bool {
	return cdr > WorkingMinCDR && throughputBps > WorkingMinThroughputBps
}

// BestMCS returns the MCS with the highest expected throughput at the given
// SNR, along with that throughput. It returns (MinMCS, 0-throughput values)
// when even the lowest MCS delivers nothing.
func BestMCS(snrDB float64) (MCS, float64) {
	best, bestTh := MinMCS, 0.0
	for m := MinMCS; m <= MaxMCS; m++ {
		th := ExpectedThroughput(m, snrDB)
		if th > bestTh {
			best, bestTh = m, th
		}
	}
	return best, bestTh
}

// BestMCSBelow returns the highest-throughput MCS not exceeding limit — the
// RA search space after a link impairment (§5.2: RA "starts at the best
// initial MCS and explores all the MCSs lower than that").
func BestMCSBelow(snrDB float64, limit MCS) (MCS, float64) {
	best, bestTh := MinMCS, 0.0
	for m := MinMCS; m <= limit && m <= MaxMCS; m++ {
		th := ExpectedThroughput(m, snrDB)
		if th > bestTh {
			best, bestTh = m, th
		}
	}
	return best, bestTh
}
