package phy

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMCSTableMonotone(t *testing.T) {
	for m := MinMCS; m < MaxMCS; m++ {
		if m.RateBps() >= (m + 1).RateBps() {
			t.Errorf("rate not increasing at %v", m)
		}
		if m.SNRReqDB() >= (m + 1).SNRReqDB() {
			t.Errorf("SNR requirement not increasing at %v", m)
		}
	}
}

func TestMCSRange(t *testing.T) {
	// The paper's X60 PHY: 9 SC MCSs, 300 Mbps to 4.75 Gbps.
	if NumMCS != 9 {
		t.Errorf("NumMCS = %d", NumMCS)
	}
	if MinMCS.RateMbps() != 300 {
		t.Errorf("min rate = %v", MinMCS.RateMbps())
	}
	if MaxMCS.RateMbps() != 4750 {
		t.Errorf("max rate = %v", MaxMCS.RateMbps())
	}
	if MaxRateBps() != MaxMCS.RateBps() {
		t.Error("MaxRateBps mismatch")
	}
}

func TestInvalidMCS(t *testing.T) {
	bad := MCS(-1)
	if bad.Valid() || bad.RateBps() != 0 {
		t.Error("negative MCS should be invalid with zero rate")
	}
	if !math.IsInf(bad.SNRReqDB(), 1) {
		t.Error("invalid MCS SNR requirement should be +Inf")
	}
	if !strings.Contains(bad.String(), "invalid") {
		t.Errorf("String = %q", bad.String())
	}
	if CDR(bad, 30) != 0 {
		t.Error("invalid MCS CDR should be 0")
	}
}

func TestFrameStructure(t *testing.T) {
	// 10 ms frames, 100 slots of 100 us, 92 codewords each (§4.1).
	if FrameDuration != 0.01 || SlotsPerFrame != 100 || CodewordsPerSlot != 92 {
		t.Error("frame structure constants changed")
	}
	if CodewordsPerFrame != 9200 {
		t.Errorf("codewords per frame = %d", CodewordsPerFrame)
	}
	if math.Abs(SlotDuration-100e-6) > 1e-12 {
		t.Errorf("slot duration = %v", SlotDuration)
	}
}

func TestCDRWaterfall(t *testing.T) {
	m := MCS(4)
	// Exactly 0.5 at the requirement.
	if got := CDR(m, m.SNRReqDB()); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDR at requirement = %v", got)
	}
	// Monotone in SNR.
	prev := -1.0
	for snr := -10.0; snr <= 40; snr += 0.5 {
		c := CDR(m, snr)
		if c < prev {
			t.Fatalf("CDR not monotone at %v", snr)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDR out of range: %v", c)
		}
		prev = c
	}
	// Saturates.
	if CDR(m, m.SNRReqDB()+8) < 0.999 {
		t.Error("CDR should saturate well above the requirement")
	}
	if CDR(m, m.SNRReqDB()-8) > 0.001 {
		t.Error("CDR should collapse well below the requirement")
	}
}

func TestCDRDegenerateInputs(t *testing.T) {
	if CDR(3, math.Inf(-1)) != 0 {
		t.Error("CDR at -Inf SNR should be 0")
	}
	if CDR(3, math.NaN()) != 0 {
		t.Error("CDR at NaN SNR should be 0")
	}
}

func TestSampleCDRStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := MCS(3)
	snr := m.SNRReqDB() + 1
	want := CDR(m, snr)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		c := SampleCDR(m, snr, rng)
		if c < 0 || c > 1 {
			t.Fatalf("sample out of range: %v", c)
		}
		sum += c
	}
	if got := sum / n; math.Abs(got-want) > 0.01 {
		t.Errorf("sample mean = %v, want ~%v", got, want)
	}
}

func TestSampleCDRExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if SampleCDR(0, -100, rng) != 0 {
		t.Error("dead channel should sample 0")
	}
	if SampleCDR(0, 100, rng) != 1 {
		t.Error("perfect channel should sample 1")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(MaxMCS, 1); math.Abs(got-4750e6*macEfficiency) > 1 {
		t.Errorf("max throughput = %v", got)
	}
	if Throughput(MaxMCS, 0) != 0 {
		t.Error("zero CDR should give zero throughput")
	}
}

func TestIsWorking(t *testing.T) {
	cases := []struct {
		cdr, th float64
		want    bool
	}{
		{0.5, 200e6, true},
		{0.05, 200e6, false}, // CDR too low
		{0.5, 100e6, false},  // throughput too low
		{0.10, 200e6, false}, // strict inequality
		{0.11, 150e6, false},
	}
	for _, c := range cases {
		if got := IsWorking(c.cdr, c.th); got != c.want {
			t.Errorf("IsWorking(%v, %v) = %v", c.cdr, c.th, got)
		}
	}
}

func TestBestMCS(t *testing.T) {
	// At very high SNR the top MCS wins.
	if m, _ := BestMCS(40); m != MaxMCS {
		t.Errorf("BestMCS(40) = %v", m)
	}
	// At moderate SNR a middle MCS wins, and its throughput beats its
	// neighbors'.
	m, th := BestMCS(15)
	if m <= MinMCS || m >= MaxMCS {
		t.Errorf("BestMCS(15) = %v", m)
	}
	if th < ExpectedThroughput(m-1, 15) || th < ExpectedThroughput(m+1, 15) {
		t.Error("BestMCS not actually best")
	}
	// Dead channel.
	if _, th := BestMCS(-30); th > 1 {
		t.Errorf("BestMCS(-30) throughput = %v", th)
	}
}

func TestBestMCSBelow(t *testing.T) {
	limit := MCS(3)
	m, th := BestMCSBelow(40, limit)
	if m != limit {
		t.Errorf("BestMCSBelow high SNR = %v, want %v", m, limit)
	}
	if th > limit.RateBps() {
		t.Error("throughput exceeds PHY rate")
	}
	// Below, never exceeds the unconstrained optimum.
	mFree, thFree := BestMCS(14)
	mLim, thLim := BestMCSBelow(14, mFree)
	if mLim != mFree || thLim != thFree {
		t.Error("limit at optimum changed the result")
	}
}

func TestBestMCSBelowClampsLimit(t *testing.T) {
	if m, _ := BestMCSBelow(40, MCS(99)); m != MaxMCS {
		t.Errorf("over-limit clamp: %v", m)
	}
}

func TestCodewordBytes(t *testing.T) {
	// rate * slot / codewords / 8.
	want := 300e6 * SlotDuration / CodewordsPerSlot / 8
	if got := MinMCS.CodewordBytes(); math.Abs(got-want) > 1e-9 {
		t.Errorf("codeword bytes = %v, want %v", got, want)
	}
	if MinMCS.CodewordBytes() >= MaxMCS.CodewordBytes() {
		t.Error("codeword size should grow with rate")
	}
}

func TestStringFormat(t *testing.T) {
	s := MCS(3).String()
	if !strings.Contains(s, "MCS3") || !strings.Contains(s, "1900") {
		t.Errorf("String = %q", s)
	}
}

func TestBestMCSBelowProperty(t *testing.T) {
	f := func(snr float64, limRaw uint8) bool {
		if math.IsNaN(snr) || math.Abs(snr) > 200 {
			return true
		}
		lim := MCS(int(limRaw) % NumMCS)
		m, th := BestMCSBelow(snr, lim)
		if m < MinMCS || m > lim {
			return false
		}
		// No MCS within the limit beats the returned throughput.
		for k := MinMCS; k <= lim; k++ {
			if ExpectedThroughput(k, snr) > th+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
