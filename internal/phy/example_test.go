package phy_test

import (
	"fmt"

	"github.com/libra-wlan/libra/internal/phy"
)

func ExampleBestMCS() {
	// At 20 dB the link supports 16QAM-1/2; at 9 dB only BPSK rates work.
	for _, snr := range []float64{20, 9} {
		m, th := phy.BestMCS(snr)
		fmt.Printf("%v -> %.0f Mbps\n", m, th/1e6)
	}
	// Output:
	// MCS6 (16QAM-1/2, 3170 Mbps) -> 2899 Mbps
	// MCS1 (BPSK-1/2, 950 Mbps) -> 739 Mbps
}

func ExampleCDR() {
	m := phy.MCS(4)
	fmt.Printf("at requirement: %.2f, +3 dB: %.2f, -3 dB: %.2f\n",
		phy.CDR(m, m.SNRReqDB()), phy.CDR(m, m.SNRReqDB()+3), phy.CDR(m, m.SNRReqDB()-3))
	// Output: at requirement: 0.50, +3 dB: 1.00, -3 dB: 0.00
}

func ExampleIsWorking() {
	// The paper's working-MCS rule: CDR > 10% AND throughput > 150 Mbps.
	fmt.Println(phy.IsWorking(0.5, 500e6), phy.IsWorking(0.05, 500e6), phy.IsWorking(0.5, 100e6))
	// Output: true false false
}
