package phy

import "github.com/libra-wlan/libra/internal/obs"

// obsCDRSamples counts codeword-delivery-ratio draws — one per simulated
// frame, the basic unit of PHY work across every campaign and policy run.
var obsCDRSamples = obs.NewCounter("libra_phy_cdr_samples_total",
	"per-frame codeword delivery ratio draws")
