package configmut_test

import (
	"testing"

	"github.com/libra-wlan/libra/internal/analysis/analysistest"
	"github.com/libra-wlan/libra/internal/analysis/configmut"
)

func TestConfigMut(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), configmut.Analyzer, "configmutfix")
}
