// Package configmut enforces the config-immutability contract on model
// training entry points: a Fit/Train method may read its receiver's exported
// configuration fields (NumTrees, MaxDepth, Workers, ...) but must never
// write them — defaults are resolved into locals. Writing resolved defaults
// back changes the semantics of a second Fit and races with concurrent
// readers of the config; the ML engine's byte-identical re-fit guarantee
// depends on the config being inert.
package configmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/libra-wlan/libra/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "configmut",
	Doc: "forbids Fit/Train methods from assigning to exported fields " +
		"reachable from their receiver (the configuration surface); resolve " +
		"defaults into locals instead of writing them back",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Fit" && fd.Name.Name != "Train" {
				continue
			}
			recv := receiverObject(pass, fd)
			if recv == nil {
				continue
			}
			checkBody(pass, fd, recv)
		}
	}
	return nil, nil
}

// receiverObject returns the *types.Var of the method's receiver, or nil
// for anonymous receivers (which cannot be written through anyway).
func receiverObject(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.ObjectOf(fd.Recv.List[0].Names[0])
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				report(pass, fd, recv, lhs)
			}
		case *ast.IncDecStmt:
			report(pass, fd, recv, n.X)
		case *ast.UnaryExpr:
			// Taking the address of a config field hands out a mutable
			// alias — the write just happens elsewhere.
			if n.Op == token.AND {
				if field := exportedConfigField(pass, recv, n.X); field != "" {
					pass.Reportf(n.Pos(),
						"%s takes the address of exported config field %s; aliasing defeats the config-immutability contract", fd.Name.Name, field)
				}
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object, lhs ast.Expr) {
	if field := exportedConfigField(pass, recv, lhs); field != "" {
		pass.Reportf(lhs.Pos(),
			"%s writes exported config field %s of its receiver; resolve the default into a local instead", fd.Name.Name, field)
	}
}

// exportedConfigField returns the printable field path when expr writes
// through the receiver into an exported field (r.Exported, r.Exported.X,
// r.Exported[i], ...); the first selector step after the receiver decides:
// exported fields form the public configuration surface, unexported fields
// (fitted state) are the method's to mutate.
func exportedConfigField(pass *analysis.Pass, recv types.Object, expr ast.Expr) string {
	e := ast.Unparen(expr)
	// Walk down to the selector whose X is the receiver identifier.
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(v.X).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == recv {
				if v.Sel.IsExported() {
					return id.Name + "." + v.Sel.Name
				}
				return ""
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return ""
		}
	}
}
