// Package configmutfix seeds config-mutation violations in Fit/Train methods
// (want-annotated) alongside the sanctioned resolve-into-locals idiom.
package configmutfix

type tuning struct{ Rate float64 }

type model struct {
	// Exported fields are the configuration surface: inert during Fit.
	MaxDepth int
	Workers  int
	Tuning   tuning

	// Unexported fields are fitted state: the method's to mutate.
	trees  []int
	fitted bool
}

// --- positives -----------------------------------------------------------

func (m *model) Fit(n int) error {
	if m.MaxDepth <= 0 {
		m.MaxDepth = 8 // want `Fit writes exported config field m\.MaxDepth`
	}
	m.Workers++          // want `Fit writes exported config field m\.Workers`
	m.Tuning.Rate = 0.05 // want `Fit writes exported config field m\.Tuning`
	p := &m.MaxDepth     // want `Fit takes the address of exported config field m\.MaxDepth`
	_ = p
	m.trees = append(m.trees, n)
	m.fitted = true
	return nil
}

type trainer struct {
	Epochs int
	loss   float64
}

func (tr *trainer) Train() {
	tr.Epochs += 1 // want `Train writes exported config field tr\.Epochs`
	tr.loss = 0
}

// --- negatives -----------------------------------------------------------

type cleanModel struct {
	MaxDepth int
	history  []float64
}

// Fit resolves defaults into locals and mutates only unexported state.
func (c *cleanModel) Fit(n int) error {
	maxDepth := c.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 8
	}
	c.history = append(c.history, float64(maxDepth*n))
	return nil
}

// Methods outside the Fit/Train contract may reconfigure freely.
func (c *cleanModel) SetMaxDepth(d int) { c.MaxDepth = d }

// Reads of exported config are the whole point: unflagged.
func (c *cleanModel) Train() int { return c.MaxDepth }
