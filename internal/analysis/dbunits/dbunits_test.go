package dbunits_test

import (
	"testing"

	"github.com/libra-wlan/libra/internal/analysis/analysistest"
	"github.com/libra-wlan/libra/internal/analysis/dbunits"
)

func TestDBUnits(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), dbunits.Analyzer, "dbfix")
}
