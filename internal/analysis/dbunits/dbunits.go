// Package dbunits machine-enforces the decibel/linear naming convention the
// channel code leans on: identifiers carrying a dB-family suffix (dB, dBm,
// dBi, DB, Db...) hold logarithmic power quantities, identifiers carrying a
// Lin suffix (or lin prefix) hold linear ones. Adding a dB value to a linear
// value, or multiplying two dB values, is a unit error that type-checks
// fine and corrupts every downstream SNR — exactly the silent drift the
// linter exists to stop.
package dbunits

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"github.com/libra-wlan/libra/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "dbunits",
	Doc: "flags +/- expressions mixing dB-suffixed and Lin-suffixed operands, " +
		"and multiplication of two dB-suffixed operands (dB quantities add; " +
		"linear quantities multiply)",
	Run: run,
}

type unit int

const (
	unknown unit = iota
	db
	lin
)

func (u unit) String() string {
	switch u {
	case db:
		return "dB-domain"
	case lin:
		return "linear-domain"
	}
	return "unitless"
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			// Unit discipline is about power arithmetic: only numeric
			// operands participate.
			if !isNumeric(pass.TypesInfo.TypeOf(be.X)) || !isNumeric(pass.TypesInfo.TypeOf(be.Y)) {
				return true
			}
			ux, uy := unitOf(be.X), unitOf(be.Y)
			switch be.Op {
			case token.ADD, token.SUB:
				if (ux == db && uy == lin) || (ux == lin && uy == db) {
					pass.Reportf(be.OpPos,
						"%q mixes %s %s and %s %s; convert with dsp.Lin/dsp.DB before combining",
						be.Op, ux, describe(be.X), uy, describe(be.Y))
				}
			case token.MUL:
				if ux == db && uy == db {
					pass.Reportf(be.OpPos,
						"multiplying dB-domain %s by dB-domain %s; dB values add — multiply the linear forms instead",
						describe(be.X), describe(be.Y))
				}
			}
			return true
		})
	}
	return nil, nil
}

// unitOf infers the power-domain unit of an expression from the naming
// convention. It recurses through parens, unary +/- , indexing, selectors,
// calls (a function's name declares its result unit: dsp.Lin(x) is linear,
// SNRdB() is dB), and same-unit +/- chains.
func unitOf(e ast.Expr) unit {
	switch v := e.(type) {
	case *ast.Ident:
		return classify(v.Name)
	case *ast.SelectorExpr:
		return classify(v.Sel.Name)
	case *ast.IndexExpr:
		return unitOf(v.X)
	case *ast.ParenExpr:
		return unitOf(v.X)
	case *ast.StarExpr:
		return unitOf(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.ADD || v.Op == token.SUB {
			return unitOf(v.X)
		}
	case *ast.CallExpr:
		switch fun := ast.Unparen(v.Fun).(type) {
		case *ast.Ident:
			return classify(fun.Name)
		case *ast.SelectorExpr:
			return classify(fun.Sel.Name)
		}
	case *ast.BinaryExpr:
		if v.Op == token.ADD || v.Op == token.SUB {
			if ux, uy := unitOf(v.X), unitOf(v.Y); ux == uy {
				return ux
			}
		}
	}
	return unknown
}

// classify maps an identifier to its unit by suffix. dB-family suffixes:
// dB, DB, Db optionally followed by a scale letter (m, i, c) — TxPowerDBm,
// LossDB, FloorDBi, snrdB. Linear: a trailing "Lin"/"Linear" camel-case
// word, a "lin" prefix (linBase, linGain), or the bare names lin/linear.
func classify(name string) unit {
	if isLinName(name) {
		return lin
	}
	if isDBName(name) {
		return db
	}
	return unknown
}

func isDBName(name string) bool {
	s := name
	// Strip one optional scale letter: dBm, dBi, dBc and capitalized kin.
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'm', 'i', 'c':
			if n >= 3 && isDBTail(s[:n-1]) {
				return true
			}
		}
	}
	return isDBTail(s)
}

// isDBTail reports whether s ends in a dB-family token: "dB", "DB", or "Db".
// A lowercase-d variant must not be the tail of an ordinary word ("holdb"
// is not a unit), so "db" alone only counts when preceded by a lowercase
// letter boundary is impossible — require a case break or short name.
func isDBTail(s string) bool {
	n := len(s)
	if n < 2 {
		return false
	}
	tail := s[n-2:]
	switch tail {
	case "dB", "DB", "Db":
	default:
		return false
	}
	if n == 2 {
		return true
	}
	prev := rune(s[n-3])
	// "sumDB", "snrdB", "pathLossDB" — accept any letter/digit boundary
	// except an uppercase run before "Db"/"dB" that would make the match a
	// word fragment is still unit-like in this codebase's naming.
	return unicode.IsLetter(prev) || unicode.IsDigit(prev) || prev == '_'
}

func isLinName(name string) bool {
	switch strings.ToLower(name) {
	case "lin", "linear":
		return true
	}
	if strings.HasSuffix(name, "Lin") || strings.HasSuffix(name, "Linear") {
		return true
	}
	// lin-prefixed camelCase: linBase, linGain — but not "line", "link",
	// "linspace": the prefix must be followed by an uppercase letter.
	if strings.HasPrefix(name, "lin") && len(name) > 3 {
		return unicode.IsUpper(rune(name[3]))
	}
	return false
}

// describe renders the operand for the diagnostic message.
func describe(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return describe(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return describe(v.X) + "[...]"
	case *ast.CallExpr:
		return describe(v.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + describe(v.X) + ")"
	}
	return "expression"
}

func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
