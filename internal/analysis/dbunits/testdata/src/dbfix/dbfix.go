// Package dbfix seeds dB/linear unit violations (want-annotated) alongside
// the correct power-arithmetic idioms mirrored from internal/channel.
package dbfix

// Lin and DB stand in for dsp.Lin / dsp.DB: a function's name declares the
// unit of its result.
func Lin(vDB float64) float64 { return vDB }
func DB(vLin float64) float64 { return vLin }

type link struct {
	TxPowerDBm float64
	ImplLossDB float64
	noiseLin   float64
}

// --- positives -----------------------------------------------------------

func mixAddition(gainDB, fadeLin float64) float64 {
	return gainDB + fadeLin // want `mixes dB-domain gainDB and linear-domain fadeLin`
}

func mixSubtraction(sigLin, pathLossDB float64) float64 {
	return sigLin - pathLossDB // want `mixes linear-domain sigLin and dB-domain pathLossDB`
}

func mixThroughFields(l *link) float64 {
	return l.TxPowerDBm + l.noiseLin // want `mixes dB-domain l\.TxPowerDBm and linear-domain l\.noiseLin`
}

func mixThroughIndex(floorDB []float64, gLin float64, i int) float64 {
	return floorDB[i] + gLin // want `mixes dB-domain floorDB\[\.\.\.\] and linear-domain gLin`
}

func mixThroughCalls(l *link) float64 {
	return Lin(l.TxPowerDBm) + snrDB(l) // want `mixes linear-domain Lin\(\.\.\.\) and dB-domain snrDB\(\.\.\.\)`
}

func dbProduct(txGainDBi, rxGainDBi float64) float64 {
	return txGainDBi * rxGainDBi // want `multiplying dB-domain txGainDBi by dB-domain rxGainDBi`
}

// --- negatives -----------------------------------------------------------

func snrDB(l *link) float64 {
	// dB quantities add and subtract freely among themselves.
	return l.TxPowerDBm - l.ImplLossDB
}

func linkBudget(l *link, pathLossDB, fadeLin float64) float64 {
	// Convert before combining: subtract in dB, multiply in linear.
	return Lin(l.TxPowerDBm-l.ImplLossDB-pathLossDB) * fadeLin
}

func snrLin(sigLin, noiseLin float64) float64 {
	// Linear quantities multiply and divide freely among themselves.
	return sigLin / noiseLin
}

func offsetDB(snrdB float64) float64 {
	// Unitless literals may shift a dB value.
	return snrdB + 3.0
}

func scaleLin(hLin float64, n int) float64 {
	// Unitless counts may scale a linear value.
	return hLin * float64(n)
}

func prefixWords(linkCount int, holdb []byte) int {
	// "linkCount" is not linear and "holdb" is not a decibel: word
	// fragments must not classify.
	return linkCount + len(holdb)
}
