// Package floatreduce protects the byte-identical parallel-reduction
// contract: goroutines must not fold results into a shared float or slice
// captured from the enclosing scope, because completion order varies with
// scheduling and float addition is not associative. The sanctioned shape —
// used by the campaign engine, the forest fit, and the CV pool — is an
// ordered per-worker (or per-item) buffer indexed by a slot the goroutine
// owns, reduced in index order after the join.
package floatreduce

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/libra-wlan/libra/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatreduce",
	Doc: "flags goroutine closures that accumulate into a captured float " +
		"scalar or append to a captured slice (scheduling-order-dependent " +
		"reduction); write to an owned index of a preallocated buffer and " +
		"reduce in order after the join",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				checkClosure(pass, lit)
			}
			return true
		})
	}
	return nil, nil
}

func checkClosure(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		// Nested goroutine closures get their own visit from run.
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, lit, n)
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && capturedFloat(pass, lit, id) {
				pass.Reportf(n.Pos(),
					"goroutine increments captured float %s; completion order decides the result — use an ordered per-worker buffer", id.Name)
			}
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, lit *ast.FuncLit, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			// Scalar accumulation into a captured float: the classic
			// nondeterministic reduction. Indexed writes into a captured
			// buffer (buf[slot] += x) are the sanctioned pattern when the
			// goroutine owns the slot, so only bare identifiers count.
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && capturedFloat(pass, lit, id) {
				pass.Reportf(lhs.Pos(),
					"goroutine accumulates into captured float %s; completion order decides the sum — write buf[worker] and reduce in order after the join", id.Name)
			}
		}
	case token.ASSIGN:
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			// x = append(x, ...) on a captured slice interleaves results
			// in completion order (and races on the header).
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok &&
				capturedIdent(pass, lit, id) && isAppendTo(pass, id, as.Rhs[i]) {
				pass.Reportf(lhs.Pos(),
					"goroutine appends to captured slice %s; results interleave in completion order — preallocate and write an owned index", id.Name)
			}
			// x = x + v / x = x * v rewritten accumulation on a captured
			// float scalar.
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok &&
				capturedFloat(pass, lit, id) && selfReference(pass, id, as.Rhs[i]) {
				pass.Reportf(lhs.Pos(),
					"goroutine accumulates into captured float %s; completion order decides the sum — write buf[worker] and reduce in order after the join", id.Name)
			}
		}
	}
}

// capturedIdent reports whether id resolves to a variable declared outside
// the closure (a true capture, not a parameter or local).
func capturedIdent(pass *analysis.Pass, lit *ast.FuncLit, id *ast.Ident) bool {
	obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return false
	}
	return analysis.DeclaredOutside(pass, id, lit.Pos(), lit.End()) && obj.Pkg() != nil
}

func capturedFloat(pass *analysis.Pass, lit *ast.FuncLit, id *ast.Ident) bool {
	if !capturedIdent(pass, lit, id) {
		return false
	}
	t := pass.TypesInfo.TypeOf(id)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isAppendTo(pass *analysis.Pass, lhs *ast.Ident, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	r := analysis.RootIdent(call.Args[0])
	return r != nil && pass.TypesInfo.ObjectOf(r) == pass.TypesInfo.ObjectOf(lhs)
}

// selfReference reports whether rhs mentions the same object as lhs
// (x = x + v), distinguishing accumulation from a plain overwrite.
func selfReference(pass *analysis.Pass, lhs *ast.Ident, rhs ast.Expr) bool {
	target := pass.TypesInfo.ObjectOf(lhs)
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == target {
			found = true
		}
		return !found
	})
	return found
}
