// Package floatreducefix seeds scheduling-order-dependent reductions
// (want-annotated) alongside the ordered per-worker buffer idiom the
// campaign and ML engines use.
package floatreducefix

import "sync"

// --- positives -----------------------------------------------------------

func racySum(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			sum += x // want `goroutine accumulates into captured float sum`
		}(x)
	}
	wg.Wait()
	return sum
}

func racySumRewritten(xs []float64) float64 {
	var total float64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			// A mutex removes the data race but not the order dependence:
			// float addition is not associative.
			mu.Lock()
			total = total + x // want `goroutine accumulates into captured float total`
			mu.Unlock()
		}(x)
	}
	wg.Wait()
	return total
}

func racyAppend(xs []float64) []float64 {
	var out []float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			out = append(out, 2*x) // want `goroutine appends to captured slice out`
		}(x)
	}
	wg.Wait()
	return out
}

// --- negatives -----------------------------------------------------------

// The sanctioned shape: each goroutine owns one index of a preallocated
// buffer; the reduction happens in index order after the join.
func orderedBuffer(xs []float64) float64 {
	out := make([]float64, len(xs))
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func(i int, x float64) {
			defer wg.Done()
			out[i] = 2 * x
		}(i, x)
	}
	wg.Wait()
	var sum float64
	for _, v := range out {
		sum += v
	}
	return sum
}

// Per-worker compound accumulation into an owned slot is equally fine.
func workerSlots(xs []float64, workers int) []float64 {
	buf := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, x := range xs {
				buf[w] += x
			}
		}(w)
	}
	wg.Wait()
	return buf
}

// Locals declared inside the closure are owned, not captured.
func closureLocal(xs []float64, done chan<- float64) {
	go func() {
		var acc float64
		for _, x := range xs {
			acc += x
		}
		done <- acc
	}()
}

// Non-float captured state (a guarded error) is outside this contract.
func firstError(jobs []func() error) error {
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func(job func() error) {
			defer wg.Done()
			if err := job(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(job)
	}
	wg.Wait()
	return firstErr
}
