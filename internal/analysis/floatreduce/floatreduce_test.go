package floatreduce_test

import (
	"testing"

	"github.com/libra-wlan/libra/internal/analysis/analysistest"
	"github.com/libra-wlan/libra/internal/analysis/floatreduce"
)

func TestFloatReduce(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), floatreduce.Analyzer, "floatreducefix")
}
