package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Allocation facts. For every function in the program the engine decides
// whether its steady state is provably allocation-free: no direct allocation
// sites outside warm-up guards, and every callee either annotated
// //lint:noalloc, itself proven allocation-free, or on the short allowlist
// of external functions known not to allocate. The noalloc analyzer reports
// the per-site diagnostics inside annotated functions; these facts answer
// the interprocedural half ("does this unannotated callee allocate?").

// An AllocSite is one construct that allocates (or must be assumed to).
type AllocSite struct {
	Pos       token.Pos
	What      string // human-readable description of the construct
	Amortized bool   // inside a warm-up guard: cold-path only
}

type allocFacts struct {
	// sites holds every function's direct allocation sites (amortized ones
	// included, marked — the noalloc analyzer reports only the hot ones).
	sites map[string][]AllocSite
	// allocates marks functions whose steady state may allocate; why records
	// the first reason for diagnostics.
	allocates map[string]bool
	why       map[string]string
}

// AllocSites returns the direct allocation sites of fn's body.
func (p *Program) AllocSites(fn *FuncNode) []AllocSite { return p.alloc.sites[fn.ID] }

// AllocFree reports whether the function with the given FuncID is provably
// allocation-free in steady state. Unknown functions are not.
func (p *Program) AllocFree(id string) bool {
	if p.Funcs[id] == nil {
		return false
	}
	return !p.alloc.allocates[id]
}

// AllocWhy returns the recorded reason a function allocates ("" if free).
func (p *Program) AllocWhy(id string) string { return p.alloc.why[id] }

// externAllocFree is the allowlist of external (outside-the-program) callees
// the noalloc contract accepts: pure arithmetic, atomics, lock/unlock, the
// plumbed-RNG draw methods, and the fixed-width encoding/binary helpers.
// sync.Pool.Get/Put are admitted as the sanctioned amortization primitive:
// a warm pool returns cached scratch, and the cold Get that runs New is
// exactly the warm-up case the contract already admits.
func externAllocFree(fn *types.Func) bool {
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "math", "math/bits", "sync/atomic":
			return true
		case "encoding/binary":
			switch fn.Name() {
			case "Uint16", "Uint32", "Uint64",
				"PutUint16", "PutUint32", "PutUint64",
				"AppendUint16", "AppendUint32", "AppendUint64":
				return true
			}
			return false
		case "math/rand", "math/rand/v2":
			// Draw methods on a plumbed generator do not allocate; the
			// constructors and Perm do.
			switch fn.Name() {
			case "Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
				"Uint32", "Uint64", "Float32", "Float64",
				"ExpFloat64", "NormFloat64", "Shuffle":
				return true
			}
			return false
		case "errors":
			return fn.Name() == "Is"
		}
	}
	switch fn.FullName() {
	case "(*sync.Pool).Get", "(*sync.Pool).Put",
		"(*sync.Mutex).Lock", "(*sync.Mutex).Unlock", "(*sync.Mutex).TryLock",
		"(*sync.RWMutex).Lock", "(*sync.RWMutex).Unlock",
		"(*sync.RWMutex).RLock", "(*sync.RWMutex).RUnlock",
		"(*sync.WaitGroup).Add", "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait",
		"(*sync.Once).Do",
		"(time.Time).UnixNano", "(time.Time).Unix", "(time.Time).Sub",
		"(time.Duration).Seconds", "(time.Duration).Nanoseconds",
		"(time.Duration).Milliseconds", "(time.Duration).Microseconds":
		return true
	}
	return false
}

// ifaceAllocFree is the allowlist for calls through external interfaces the
// engine cannot resolve to implementations.
func ifaceAllocFree(fullName string) bool {
	switch fullName {
	case "(context.Context).Err", "(context.Context).Done", "(context.Context).Deadline":
		return true
	}
	return false
}

// computeAllocFacts scans every function for direct allocation sites, then
// runs an optimistic fixpoint over the call graph: everything starts
// allocation-free and flips when a hot-path site or an allocating (or
// unresolvable) callee is found, until nothing changes. Cycles resolve to
// whatever their member bodies prove — a recursion with no allocation sites
// stays free.
func computeAllocFacts(p *Program) *allocFacts {
	f := &allocFacts{
		sites:     make(map[string][]AllocSite, len(p.order)),
		allocates: make(map[string]bool),
		why:       make(map[string]string),
	}
	for _, fn := range p.order {
		f.sites[fn.ID] = scanAllocSites(fn)
	}
	mark := func(fn *FuncNode, why string) bool {
		if f.allocates[fn.ID] {
			return false
		}
		f.allocates[fn.ID] = true
		f.why[fn.ID] = why
		return true
	}
	for _, fn := range p.order {
		for _, s := range f.sites[fn.ID] {
			if !s.Amortized {
				mark(fn, s.What)
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range p.order {
			if f.allocates[fn.ID] || fn.Noalloc != nil {
				// Annotated functions are trusted interprocedurally; their
				// own bodies are checked by the noalloc analyzer.
				continue
			}
			if why := f.callAllocWhy(p, fn); why != "" {
				changed = mark(fn, why) || changed
			}
		}
	}
	return f
}

// callAllocWhy returns a reason fn's calls may allocate, or "".
func (f *allocFacts) callAllocWhy(p *Program, fn *FuncNode) string {
	for _, c := range fn.Calls {
		if c.Amortized {
			continue
		}
		if why := f.siteAllocWhy(p, c); why != "" {
			return why
		}
	}
	return ""
}

// CallAllocWhy reports why one call site may allocate under the noalloc
// contract, or "" when every possible callee is annotated, proven
// allocation-free, or allowlisted. The noalloc analyzer uses it for
// per-site diagnostics inside annotated functions.
func (p *Program) CallAllocWhy(c *CallSite) string { return p.alloc.siteAllocWhy(p, c) }

func (f *allocFacts) siteAllocWhy(p *Program, c *CallSite) string {
	switch c.Kind {
	case CallStatic:
		callee := p.FuncAt(c.Callee)
		if callee == nil {
			if !externAllocFree(c.Callee) {
				return fmt.Sprintf("calls %s (external, not known allocation-free)", c.Callee.FullName())
			}
			return ""
		}
		if callee.Noalloc != nil {
			return ""
		}
		if f.allocates[callee.ID] {
			return fmt.Sprintf("calls %s, which allocates (%s)", callee.Name(), f.why[callee.ID])
		}
	case CallIface:
		if len(c.Candidates) == 0 {
			if !ifaceAllocFree(c.Callee.FullName()) {
				return fmt.Sprintf("calls interface method %s with no resolvable implementation", c.Callee.FullName())
			}
			return ""
		}
		for _, id := range c.Candidates {
			impl := p.Funcs[id]
			if impl == nil || (impl.Noalloc == nil && f.allocates[id]) {
				return fmt.Sprintf("calls interface method %s; implementation %s allocates", c.Callee.Name(), id)
			}
		}
	case CallDynamic:
		return "calls through a func value"
	}
	return ""
}

// scanAllocSites finds the direct allocation constructs in one body:
// make/new, non-amortized appends, slice/map composite literals, escaping
// (&-taken) composites, interface boxing, string concatenation and
// string↔[]byte conversions, map writes, capturing closures, and go
// statements. Appends that grow a caller-owned buffer in place
// (x = append(x, ...) with x rooted at a parameter, the receiver, or a
// re-slice of one) are the amortized idiom and produce no site.
func scanAllocSites(fn *FuncNode) []AllocSite {
	info := fn.Pkg.TypesInfo
	body := fn.Decl.Body
	guards := warmUpRanges(body, info)
	callerBuf := callerBuffers(fn)
	var sites []AllocSite
	add := func(pos token.Pos, what string) {
		sites = append(sites, AllocSite{Pos: pos, What: what, Amortized: guards.contains(pos)})
	}

	// selfAppends records append calls of the sanctioned in-place form so the
	// generic call walk below can skip them.
	selfAppends := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinCall(info, call, "append") || len(call.Args) == 0 {
				continue
			}
			lr, ar := RootIdent(as.Lhs[i]), RootIdent(call.Args[0])
			if lr == nil || ar == nil || info.ObjectOf(lr) != info.ObjectOf(ar) {
				continue
			}
			if callerBuf[info.ObjectOf(lr)] {
				selfAppends[call] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			scanCallAlloc(info, n, selfAppends, add)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				add(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				add(n.Pos(), "string concatenation allocates")
			}
		case *ast.FuncLit:
			if closureCaptures(info, n) {
				add(n.Pos(), "closure captures variables and allocates")
			}
		case *ast.GoStmt:
			add(n.Pos(), "go statement allocates a goroutine")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isMapIndex(info, lhs) {
					add(lhs.Pos(), "map write may allocate")
				}
			}
		case *ast.IncDecStmt:
			if isMapIndex(info, n.X) {
				add(n.X.Pos(), "map write may allocate")
			}
		}
		return true
	})
	return sites
}

// scanCallAlloc handles the call-shaped allocation constructs: make, new,
// growing append, string↔[]byte conversions, and interface boxing of
// concrete arguments at call boundaries.
func scanCallAlloc(info *types.Info, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool, add func(token.Pos, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				if !selfAppends[call] {
					add(call.Pos(), "append may grow and allocate; grow a caller-owned buffer in place instead")
				}
			}
			return
		}
	}
	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if isStringByteConv(to, from) {
			add(call.Pos(), "string↔[]byte conversion copies and allocates")
		}
		return
	}
	// Interface boxing of concrete arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1:
			pt = sig.Params().At(i).Type()
		case sig.Params().Len() > 0:
			pt = sig.Params().At(sig.Params().Len() - 1).Type()
			if sig.Variadic() && !call.Ellipsis.IsValid() {
				if sl, ok := pt.(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isPointerShaped(at) || isUntypedNil(info, arg) {
			continue
		}
		add(arg.Pos(), "argument boxes a concrete value into an interface")
	}
}

func isMapIndex(info *types.Info, e ast.Expr) bool {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// callerBuffers collects the objects that denote caller-owned storage:
// parameters, the receiver, named results, and locals initialized (or
// re-assigned) as re-slices of such storage or of struct fields reached
// through it. Appending in place to one of these is the amortized idiom —
// capacity belongs to the caller and is reused across calls.
func callerBuffers(fn *FuncNode) map[types.Object]bool {
	info := fn.Pkg.TypesInfo
	set := make(map[types.Object]bool)
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.ObjectOf(name); obj != nil {
					set[obj] = true
				}
			}
		}
	}
	addField(fn.Decl.Recv)
	addField(fn.Decl.Type.Params)
	addField(fn.Decl.Type.Results)

	// Propagate through re-slices: x := buf[:0], x := s.field[:n], x := buf.
	// Iterate until stable so chains (a := s.b[:0]; c := a) resolve.
	rooted := func(e ast.Expr) bool {
		r := RootIdent(e)
		return r != nil && set[info.ObjectOf(r)]
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil || set[obj] {
					continue
				}
				switch rhs := ast.Unparen(as.Rhs[i]).(type) {
				case *ast.SliceExpr:
					if rooted(rhs.X) {
						set[obj] = true
						changed = true
					}
				case *ast.Ident, *ast.SelectorExpr:
					if rooted(rhs) {
						set[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return set
}

// closureCaptures reports whether the literal references variables declared
// outside itself but inside the enclosing function (true closures allocate;
// literals that only touch their own locals and package globals are static).
func closureCaptures(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.ObjectOf(id).(*types.Var)
		if !ok || obj.Pos() == token.NoPos {
			return true
		}
		// Package-level vars don't capture; anything declared outside the
		// literal but at local (non-package) scope does.
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() >= lit.End() {
			captures = true
			return false
		}
		return true
	})
	return captures
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringByteConv(to, from types.Type) bool {
	isBytes := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStringType(to) && isBytes(from)) || (isBytes(to) && isStringType(from))
}

// isPointerShaped reports whether values of t fit an interface's data word
// without boxing: pointers, channels, maps, funcs, and unsafe pointers.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
		b, ok := t.Underlying().(*types.Basic)
		if ok {
			return b.Kind() == types.UnsafePointer
		}
		return true
	}
	return false
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
