package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The contract-annotation grammar. Annotations are doc-comment directives
// that put a function (or a whole package) under — or sanction it out of —
// one of the interprocedural contracts:
//
//	//lint:wallclock <reason>   — this function (or package, when the
//	                              directive sits in the package doc) may read
//	                              the wall clock; the reason is mandatory.
//	                              The determinism analyzer verifies the
//	                              annotation's use: annotating a function the
//	                              engine proves clock-free is itself reported
//	                              (a stale annotation is a lie in the source).
//	//lint:noalloc [reason]     — this function is an allocation-free hot
//	                              path: the noalloc analyzer forbids
//	                              allocation sites in its body and calls to
//	                              callees it cannot prove allocation-free.
//	//lint:clockfree <reason>   — package-level (package doc) directive: no
//	                              function in the package may reach a
//	                              wall-clock read through any call path. The
//	                              clocksep analyzer enforces it; the drift
//	                              and decision-log packages carry it so
//	                              their windowed statistics provably derive
//	                              from record order, never the wall clock.
//
// The directives live in the function's doc comment (any line of it), so
// the contract travels with the API documentation. Line-level escape hatches
// remain the existing //lint:ignore <analyzer> <reason> comments.

// An Annotation is one parsed lint directive.
type Annotation struct {
	Kind   string // "wallclock", "noalloc", or "clockfree"
	Reason string // justification text; mandatory for wallclock and clockfree
	Pos    token.Pos
}

const (
	annotWallclock = "wallclock"
	annotNoalloc   = "noalloc"
	annotClockfree = "clockfree"
)

// parseAnnotations extracts the lint directives from one doc comment group.
// A //lint:wallclock directive without a reason is discarded (like an
// unexplained //lint:ignore): sanctioning a wall-clock read without saying
// why is not a contract, it is a loophole.
func parseAnnotations(doc *ast.CommentGroup) []*Annotation {
	if doc == nil {
		return nil
	}
	var out []*Annotation
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "lint:" + annotWallclock, "lint:" + annotClockfree:
			if len(fields) < 2 {
				continue // no reason: not a valid contract
			}
			out = append(out, &Annotation{
				Kind:   strings.TrimPrefix(fields[0], "lint:"),
				Reason: strings.Join(fields[1:], " "),
				Pos:    c.Pos(),
			})
		case "lint:" + annotNoalloc:
			out = append(out, &Annotation{
				Kind:   annotNoalloc,
				Reason: strings.Join(fields[1:], " "),
				Pos:    c.Pos(),
			})
		}
	}
	return out
}

// annotationFor returns the first annotation of the given kind, or nil.
func annotationFor(annots []*Annotation, kind string) *Annotation {
	for _, a := range annots {
		if a.Kind == kind {
			return a
		}
	}
	return nil
}
