package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed, and type-checked target package.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// TypeErrors holds type-checker errors (the load is tolerant so a
	// broken tree still produces positioned output instead of a panic).
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go command, parses every matched package's
// non-test Go files, and type-checks them against compiler export data
// produced by `go list -export`. Dependencies are imported from export data
// rather than re-checked from source, so loading stays fast and works with
// nothing but the baked-in toolchain (no module downloads, no x/tools).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil && len(t.GoFiles) == 0 {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one listed package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:      lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      fset,
		Files:     files,
		TypesInfo: NewTypesInfo(),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even on error; TypeErrors carries details.
	pkg.Pkg, _ = conf.Check(lp.ImportPath, fset, files, pkg.TypesInfo)
	return pkg, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// ExportImporter returns a types.Importer that satisfies imports from the
// compiler export-data files in exports (import path → file), as produced by
// `go list -export`. "unsafe" is handled by the gc importer itself.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// ListExports resolves the given import paths (plus their transitive deps)
// to export-data files. The analysistest harness uses it to type-check
// fixture packages whose imports are all in the standard library.
func ListExports(dir string, importPaths []string) (map[string]string, error) {
	exports := make(map[string]string)
	if len(importPaths) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, importPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(importPaths, " "), err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}
