package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// TestLoadRealPackage exercises the go list -export loader against an
// actual in-repo package with both stdlib and intra-module imports.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load("../..", "./internal/channel")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "github.com/libra-wlan/libra/internal/channel" {
		t.Errorf("unexpected path %q", pkg.Path)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	if len(pkg.Files) == 0 || pkg.Pkg == nil || !pkg.Pkg.Complete() {
		t.Fatalf("incomplete load: files=%d pkg=%v", len(pkg.Files), pkg.Pkg)
	}
	// Cross-module imports must resolve through export data.
	found := false
	for _, imp := range pkg.Pkg.Imports() {
		if imp.Path() == "github.com/libra-wlan/libra/internal/dsp" {
			found = true
		}
	}
	if !found {
		t.Error("internal/dsp import did not resolve through export data")
	}
}

// parsePackage type-checks an import-free source string into a Package.
func parsePackage(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "suppress.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{
		Path:      "github.com/libra-wlan/libra/internal/fixtures/suppress",
		Fset:      fset,
		Files:     []*ast.File{f},
		TypesInfo: NewTypesInfo(),
	}
	conf := types.Config{}
	pkg.Pkg, err = conf.Check(pkg.Path, fset, pkg.Files, pkg.TypesInfo)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// callReporter flags every function call; the suppression tests count which
// survive the //lint:ignore filter.
var callReporter = &Analyzer{
	Name: "callreporter",
	Doc:  "test analyzer: reports every call expression",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(c.Pos(), "call")
				}
				return true
			})
		}
		return nil, nil
	},
}

func TestSuppression(t *testing.T) {
	const src = `package suppress

func f() int { return 0 }

func a() int {
	return f() // plain: reported
}

func b() int {
	//lint:ignore callreporter justified on the preceding line
	return f()
}

func c() int {
	return f() //lint:ignore callreporter justified on the same line
}

func d() int {
	//lint:ignore callreporter
	return f() // no reason given: suppression invalid, still reported
}

func e() int {
	//lint:ignore otherchecker reason names a different analyzer
	return f()
}

func g() int {
	//lint:ignore * wildcard silences every analyzer
	return f()
}
`
	pkg := parsePackage(t, src)
	findings, err := RunPackage(pkg, []*Analyzer{callReporter})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, f := range findings {
		lines = append(lines, f.Pos.Line)
	}
	// a (line 6), d (line 20), e (line 25) survive; b, c, g are suppressed.
	want := []int{6, 20, 25}
	if len(lines) != len(want) {
		t.Fatalf("findings on lines %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("findings on lines %v, want %v", lines, want)
		}
	}
}

func TestFileIgnore(t *testing.T) {
	const src = `package suppress

//lint:file-ignore callreporter this file is exempt wholesale

func f() int { return 0 }

func a() int { return f() }
func b() int { return f() }
`
	pkg := parsePackage(t, src)
	findings, err := RunPackage(pkg, []*Analyzer{callReporter})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("file-ignore leaked findings: %v", findings)
	}
}

// TestWholeTreeClean is the in-repo merge gate in miniature: the shipped
// tree must be clean under the full suite. It doubles as an integration
// test of Load over every package.
func TestWholeTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	// Import the real analyzers indirectly: cmd/libra-lint owns the
	// registry, and internal packages cannot import it, so the gate here
	// checks the framework path with a no-op analyzer and leaves invariant
	// enforcement to `make lint`.
	noop := &Analyzer{Name: "noop", Doc: "noop", Run: func(*Pass) (any, error) { return nil, nil }}
	findings, err := Run("../..", []string{"./..."}, []*Analyzer{noop})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Analyzer: "dbunits",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "msg",
	}
	if got := f.String(); !strings.Contains(got, "x.go:3:7") || !strings.Contains(got, "dbunits") {
		t.Errorf("bad finding format %q", got)
	}
}
