// Package analysistest is a stdlib-only golden-test harness for the
// internal/analysis analyzers, modelled on
// golang.org/x/tools/go/analysis/analysistest. Fixture packages live under
// <analyzer>/testdata/src/<pkg>/ and annotate expected diagnostics with
// trailing comments of the form
//
//	x := badCall() // want "regexp" "second regexp"
//
// Every diagnostic must match a want pattern on its line and every want
// pattern must be matched by a distinct diagnostic, so fixtures pin both
// the positives (seeded violations) and the negatives (clean idioms that
// must stay unflagged).
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/libra-wlan/libra/internal/analysis"
)

// Run loads each fixture package from dir/src/<pkg>, applies the analyzer,
// and checks the produced diagnostics against the // want annotations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, filepath.Join(dir, "src", pkg), a)
		})
	}
}

// TestData returns the absolute path of the calling test's testdata dir.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg := loadFixture(t, dir)
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	checkMatches(t, findings, wants)
}

// loadFixture parses and type-checks every .go file in dir as one package,
// resolving its (standard-library) imports through export data.
func loadFixture(t *testing.T, dir string) *analysis.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[p] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports, err := analysis.ListExports(dir, imports)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &analysis.Package{
		Path:      fixturePath(dir),
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		TypesInfo: analysis.NewTypesInfo(),
	}
	conf := types.Config{Importer: analysis.ExportImporter(fset, exports)}
	p, err := conf.Check(pkg.Path, fset, files, pkg.TypesInfo)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	pkg.Pkg = p
	return pkg
}

// fixturePath derives the fixture's import path from its directory name so
// analyzers with package-path scoping (e.g. determinism's cmd/ exemption)
// see a plausible in-repo path: fixtures named cmd* land under cmd/,
// everything else under internal/.
func fixturePath(dir string) string {
	base := filepath.Base(dir)
	if strings.HasPrefix(base, "cmd") {
		return "github.com/libra-wlan/libra/cmd/" + base
	}
	return "github.com/libra-wlan/libra/internal/fixtures/" + base
}

// want is one expected-diagnostic annotation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// collectWants extracts the // want "re" annotations from fixture comments.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var q byte
		switch s[0] {
		case '"':
			q = '"'
		case '`':
			q = '`'
		default:
			t.Fatalf("%s: malformed want annotation near %q", pos, s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		lit := s[:end+2]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}

// checkMatches enforces the bijection between findings and wants per line.
func checkMatches(t *testing.T, findings []analysis.Finding, wants []*want) {
	t.Helper()
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on the finding's line whose pattern
// matches the message.
func claim(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
