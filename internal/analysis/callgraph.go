package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The interprocedural layer. A Program is the unit the contract analyzers
// (determinism v2, noalloc, clocksep) work against: every target package's
// functions indexed into one call graph, with per-function fact summaries
// (allocation behaviour, wall-clock taint) computed to a fixpoint before any
// analyzer runs.
//
// Functions are keyed by types.Func.FullName() rather than object identity:
// a target package sees its in-module dependencies through compiler export
// data, so the *types.Func for obs.StartTimer observed from internal/sim is
// a different object than the one from type-checking internal/obs itself.
// The full name ("(*pkg/path.Recv).Method" / "pkg/path.Func") is identical
// in both universes and unifies them.
//
// Call edges are resolved statically: package-level functions and methods
// on concrete receivers resolve to their one callee; calls through an
// interface resolve to every named type in the program whose method set
// implements that interface (class-hierarchy style); calls through plain
// func values stay unresolved and each analyzer treats them with its own
// conservatism (noalloc flags them, clock-reachability cannot follow them).

// A CallKind classifies how a call site's callee was resolved.
type CallKind int

const (
	// CallStatic resolved to exactly one function or concrete method.
	CallStatic CallKind = iota
	// CallIface resolved through an interface method to the in-program
	// implementations in Candidates (possibly none).
	CallIface
	// CallDynamic is a call through a func value — unresolvable.
	CallDynamic
)

// A CallSite is one resolved call expression inside a function body.
type CallSite struct {
	Pos  token.Pos
	Kind CallKind
	// Callee is the resolved function (CallStatic) or the interface method
	// (CallIface); nil for CallDynamic.
	Callee *types.Func
	// Candidates holds the FuncIDs of the in-program implementations of an
	// interface callee, sorted for deterministic diagnostics.
	Candidates []string
	// Amortized marks a call lexically inside a warm-up guard (see
	// warmUpGuard): it runs only while a reusable buffer is still cold.
	Amortized bool
}

// A FuncNode is one function in the program's call graph.
type FuncNode struct {
	ID    string // types.Func.FullName()
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Calls []*CallSite

	// Wallclock and Noalloc are the function's contract annotations
	// (nil when absent).
	Wallclock *Annotation
	Noalloc   *Annotation
}

// Name returns the function's name qualified with its receiver, without the
// package path — the form diagnostics use.
func (f *FuncNode) Name() string {
	if f.Decl.Recv != nil && len(f.Decl.Recv.List) > 0 {
		return recvString(f.Decl.Recv.List[0].Type) + "." + f.Decl.Name.Name
	}
	return f.Decl.Name.Name
}

func recvString(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return "(*" + recvString(t.X) + ")"
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvString(t.X)
	case *ast.IndexListExpr:
		return recvString(t.X)
	default:
		return "?"
	}
}

// A Program is the interprocedural view over every loaded target package.
type Program struct {
	Pkgs  []*Package
	Funcs map[string]*FuncNode

	// order holds the functions in deterministic (load, file, position)
	// order so fixpoints and diagnostics never depend on map iteration.
	order []*FuncNode

	// pkgWallclock maps a package path to its package-level //lint:wallclock
	// annotation, when one is present in the package doc.
	pkgWallclock map[string]*Annotation

	// pkgClockfree maps a package path to its package-level //lint:clockfree
	// annotation: the clocksep analyzer bans every function in such a
	// package from reaching the wall clock.
	pkgClockfree map[string]*Annotation

	// named collects every named type defined by a target package, the
	// candidate set for interface-call resolution.
	named []*types.Named

	alloc *allocFacts
	clock *clockFacts
}

// FuncAt returns the program node for a declared function object (from any
// type-checking universe), or nil.
func (p *Program) FuncAt(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return p.Funcs[fn.FullName()]
}

// PkgWallclock returns the package-level wallclock annotation for path.
func (p *Program) PkgWallclock(path string) *Annotation { return p.pkgWallclock[path] }

// PkgClockfree returns the package-level clockfree annotation for path.
func (p *Program) PkgClockfree(path string) *Annotation { return p.pkgClockfree[path] }

// BuildProgram indexes the packages into a call graph and computes the fact
// summaries the contract analyzers consume.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Funcs:        make(map[string]*FuncNode),
		pkgWallclock: make(map[string]*Annotation),
		pkgClockfree: make(map[string]*Annotation),
		Pkgs:         pkgs,
	}
	for _, pkg := range pkgs {
		p.indexPackage(pkg)
	}
	for _, fn := range p.order {
		p.resolveCalls(fn)
	}
	p.alloc = computeAllocFacts(p)
	p.clock = computeClockFacts(p)
	return p
}

// indexPackage registers the package's functions, named types, and
// package-level annotations.
func (p *Program) indexPackage(pkg *Package) {
	if pkg.Pkg != nil {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok {
				p.named = append(p.named, n)
			}
		}
	}
	for _, f := range pkg.Files {
		pkgAnnots := parseAnnotations(f.Doc)
		if a := annotationFor(pkgAnnots, annotWallclock); a != nil && pkg.Pkg != nil {
			p.pkgWallclock[pkg.Pkg.Path()] = a
		}
		if a := annotationFor(pkgAnnots, annotClockfree); a != nil && pkg.Pkg != nil {
			p.pkgClockfree[pkg.Pkg.Path()] = a
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			annots := parseAnnotations(fd.Doc)
			node := &FuncNode{
				ID:        obj.FullName(),
				Obj:       obj,
				Decl:      fd,
				Pkg:       pkg,
				Wallclock: annotationFor(annots, annotWallclock),
				Noalloc:   annotationFor(annots, annotNoalloc),
			}
			p.Funcs[node.ID] = node
			p.order = append(p.order, node)
		}
	}
}

// resolveCalls walks the function body (closures included — their calls are
// attributed to the enclosing declaration) and resolves every call site.
func (p *Program) resolveCalls(fn *FuncNode) {
	info := fn.Pkg.TypesInfo
	guards := warmUpRanges(fn.Decl.Body, info)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		site := p.resolveCall(info, call)
		if site == nil {
			return true
		}
		site.Amortized = guards.contains(call.Pos())
		fn.Calls = append(fn.Calls, site)
		return true
	})
}

// resolveCall classifies one call expression; nil for conversions, builtins,
// and immediately-invoked function literals (whose bodies are scanned as
// part of the enclosing function anyway).
func (p *Program) resolveCall(info *types.Info, call *ast.CallExpr) *CallSite {
	// Conversions ([]byte(s), T(x)) are not calls, whatever shape the type
	// expression takes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) wraps the callee in an index node.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if _, isFn := info.TypeOf(idx.X).(*types.Signature); isFn {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.ObjectOf(fun).(type) {
		case *types.Func:
			return &CallSite{Pos: call.Pos(), Kind: CallStatic, Callee: obj}
		case *types.Builtin, *types.TypeName, nil:
			return nil // builtin or conversion: no call edge
		default:
			return &CallSite{Pos: call.Pos(), Kind: CallDynamic} // func value
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				m, _ := sel.Obj().(*types.Func)
				if m == nil {
					return &CallSite{Pos: call.Pos(), Kind: CallDynamic}
				}
				if types.IsInterface(sel.Recv()) {
					iface, _ := sel.Recv().Underlying().(*types.Interface)
					return &CallSite{
						Pos: call.Pos(), Kind: CallIface, Callee: m,
						Candidates: p.implementations(iface, m.Name()),
					}
				}
				return &CallSite{Pos: call.Pos(), Kind: CallStatic, Callee: m}
			default: // FieldVal: func-typed field
				return &CallSite{Pos: call.Pos(), Kind: CallDynamic}
			}
		}
		// Qualified identifier (pkg.F), conversion, or method expression on
		// a package-qualified type.
		switch obj := info.ObjectOf(fun.Sel).(type) {
		case *types.Func:
			return &CallSite{Pos: call.Pos(), Kind: CallStatic, Callee: obj}
		case *types.TypeName, nil:
			return nil
		default:
			return &CallSite{Pos: call.Pos(), Kind: CallDynamic}
		}
	case *ast.FuncLit:
		return nil // immediately invoked; body scanned in place
	default:
		return &CallSite{Pos: call.Pos(), Kind: CallDynamic}
	}
}

// implementations returns the sorted FuncIDs of methods on in-program named
// types (or pointers to them) that implement the interface's method. Types
// are compared structurally, so implementations found in a source-checked
// package match interfaces observed through export data as long as the
// method signatures mention only shared types.
func (p *Program) implementations(iface *types.Interface, method string) []string {
	if iface == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, n := range p.named {
		if types.IsInterface(n) {
			continue
		}
		var recv types.Type = n
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(n)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, n.Obj().Pkg(), method)
		if m, ok := obj.(*types.Func); ok {
			id := m.FullName()
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	return out
}

// posRanges is a set of [from, to) position intervals.
type posRanges []struct{ from, to token.Pos }

func (r posRanges) contains(pos token.Pos) bool {
	for _, iv := range r {
		if pos >= iv.from && pos < iv.to {
			return true
		}
	}
	return false
}

// warmUpRanges collects the body ranges of warm-up guards: if statements
// whose condition re-checks a reusable buffer's readiness — a cap/len
// comparison or a nil test. Allocation sites and calls inside such a branch
// run only while scratch is still cold, so the steady state stays
// allocation-free; the noalloc contract admits them ("amortized").
func warmUpRanges(body *ast.BlockStmt, info *types.Info) posRanges {
	var out posRanges
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !isWarmUpCond(ifs.Cond, info) {
			return true
		}
		out = append(out, struct{ from, to token.Pos }{ifs.Body.Pos(), ifs.Body.End()})
		return true
	})
	return out
}

// isWarmUpCond reports whether the condition (or any || / && arm of it)
// compares cap()/len() of something, or tests something against nil.
func isWarmUpCond(cond ast.Expr, info *types.Info) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR, token.LAND:
			return isWarmUpCond(e.X, info) || isWarmUpCond(e.Y, info)
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.NEQ, token.EQL:
			if isNilIdent(e.X) || isNilIdent(e.Y) {
				return true
			}
			return isCapLenCall(e.X, info) || isCapLenCall(e.Y, info)
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isCapLenCall(e ast.Expr, info *types.Info) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && (b.Name() == "cap" || b.Name() == "len")
}

// PathString renders a call chain for diagnostics: "a → b → c".
func PathString(names []string) string { return strings.Join(names, " → ") }
