package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// A Finding is one diagnostic resolved to a concrete position, tagged with
// the analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads the packages matched by patterns (relative to dir) and applies
// every analyzer to every package with a default-sized worker pool,
// returning the surviving findings sorted by position. Suppressions (see
// lintIgnores) are applied here so every consumer — the libra-lint binary
// and the bench gate alike — honours them identically.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	return RunN(dir, patterns, analyzers, 0)
}

// RunN is Run with an explicit worker count (<= 0 means GOMAXPROCS).
// Packages are analyzed concurrently; the interprocedural Program is built
// once, serially, before the pool starts. Findings are merged in package
// load order and then position-sorted with a full tie-break, so the output
// bytes are identical for every worker count.
//
// A panicking analyzer is contained: its panic is reported through the
// returned error (joined across analyzers and packages) while every other
// analyzer's findings are kept, so one crashing check cannot mask the rest.
func RunN(dir string, patterns []string, analyzers []*Analyzer, workers int) ([]Finding, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	prog := BuildProgram(pkgs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}

	perPkg := make([][]Finding, len(pkgs))
	errs := make([]error, len(pkgs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perPkg[i], errs[i] = RunPackageProg(pkgs[i], prog, analyzers)
			}
		}()
	}
	for i := range pkgs {
		next <- i
	}
	close(next)
	wg.Wait()

	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, errors.Join(errs...)
}

// sortFindings orders findings by position with analyzer and message
// tie-breaks — a total order, so concurrent runs serialize identically.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// RunPackage applies the analyzers to one loaded package, building a
// single-package interprocedural Program for the pass. The analysistest
// harness and engine tests use this entry point; the multi-package driver
// goes through RunN so the Program spans the whole pattern set.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunPackageProg(pkg, BuildProgram([]*Package{pkg}), analyzers)
}

// RunPackageProg applies the analyzers to one package against a prebuilt
// Program and filters the diagnostics through the package's //lint:ignore
// comments. Analyzer panics are contained per analyzer: the findings of the
// others survive and the panics come back in the (joined) error.
func RunPackageProg(pkg *Package, prog *Program, analyzers []*Analyzer) ([]Finding, error) {
	ignores := lintIgnores(pkg)
	var findings []Finding
	var errs []error
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			Prog:      prog,
		}
		name := a.Name
		// Collect into a per-analyzer slice and commit only on clean return,
		// so a half-run panicking analyzer contributes nothing partial.
		var mine []Finding
		pass.Report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if ignores.suppressed(name, pos) {
				return
			}
			mine = append(mine, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if err := runContained(a, pass); err != nil {
			errs = append(errs, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err))
			continue
		}
		findings = append(findings, mine...)
	}
	return findings, errors.Join(errs...)
}

// runContained invokes one analyzer, converting a panic into an error.
func runContained(a *Analyzer, pass *Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	_, err = a.Run(pass)
	return err
}

// ignoreSet records, per file, which analyzers are suppressed on which lines
// (and which are suppressed for the whole file).
type ignoreSet struct {
	// line[file][line] holds analyzer names (or "*") ignored at that line.
	line map[string]map[int][]string
	// file[file] holds analyzer names (or "*") ignored file-wide.
	file map[string][]string
}

// lintIgnores scans the package's comments for the two suppression forms:
//
//	//lint:ignore <analyzer> <reason>       — next (or same) line only
//	//lint:file-ignore <analyzer> <reason>  — whole file
//
// <analyzer> may be "*" to suppress every libra-lint check. The reason is
// mandatory: a bare "//lint:ignore determinism" suppresses nothing, so every
// silenced finding carries its justification in the source.
func lintIgnores(pkg *Package) *ignoreSet {
	set := &ignoreSet{
		line: make(map[string]map[int][]string),
		file: make(map[string][]string),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				fields := strings.Fields(text)
				if len(fields) < 3 {
					continue // no reason given: not a valid suppression
				}
				pos := pkg.Fset.Position(c.Pos())
				switch fields[0] {
				case "lint:ignore":
					m := set.line[pos.Filename]
					if m == nil {
						m = make(map[int][]string)
						set.line[pos.Filename] = m
					}
					// A suppression covers its own line (trailing
					// comment) and the next line (standalone comment
					// above the offending statement).
					m[pos.Line] = append(m[pos.Line], fields[1])
					m[pos.Line+1] = append(m[pos.Line+1], fields[1])
				case "lint:file-ignore":
					set.file[pos.Filename] = append(set.file[pos.Filename], fields[1])
				}
			}
		}
	}
	return set
}

func (s *ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	for _, name := range s.file[pos.Filename] {
		if name == analyzer || name == "*" {
			return true
		}
	}
	for _, name := range s.line[pos.Filename][pos.Line] {
		if name == analyzer || name == "*" {
			return true
		}
	}
	return false
}

// DeclaredOutside reports whether the identifier's object is declared
// outside the syntactic range [from, to) — the shared "captured or outer
// variable" test used by the determinism and floatreduce analyzers.
func DeclaredOutside(pass *Pass, id *ast.Ident, from, to token.Pos) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < from || obj.Pos() >= to
}

// RootIdent returns the identifier at the base of a selector/index chain
// (x, x.f, x[i].g → x), or nil if the base is not a plain identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
