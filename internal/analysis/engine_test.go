package analysis

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWorkerCountInvariance is the determinism contract of the parallel
// runner: findings — and the exact bytes of the JSON and SARIF reports —
// must be identical for every -workers value.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("loads module packages")
	}
	patterns := []string{"./internal/dsp", "./internal/geom", "./internal/phased", "./internal/obs"}
	serial, err1 := RunN("../..", patterns, []*Analyzer{callReporter}, 1)
	wide, err8 := RunN("../..", patterns, []*Analyzer{callReporter}, 8)
	if err1 != nil || err8 != nil {
		t.Fatalf("run errors: workers=1 %v, workers=8 %v", err1, err8)
	}
	if len(serial) == 0 {
		t.Fatal("callreporter found no calls; the fixture lost its teeth")
	}
	if len(serial) != len(wide) {
		t.Fatalf("workers=1 found %d, workers=8 found %d", len(serial), len(wide))
	}
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("finding %d differs: %v vs %v", i, serial[i], wide[i])
		}
	}
	var j1, j8, s1, s8 bytes.Buffer
	if err := WriteJSON(&j1, "../..", serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&j8, "../..", wide); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j8.Bytes()) {
		t.Error("JSON output differs across worker counts")
	}
	az := []*Analyzer{callReporter}
	if err := WriteSARIF(&s1, "../..", serial, az); err != nil {
		t.Fatal(err)
	}
	if err := WriteSARIF(&s8, "../..", wide, az); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s8.Bytes()) {
		t.Error("SARIF output differs across worker counts")
	}
}

// TestPanicContainment: a panicking analyzer must not take down the run or
// poison the other analyzers' findings, and its own partial findings must be
// discarded (a half-reported invariant is worse than an explicit failure).
func TestPanicContainment(t *testing.T) {
	const src = `package suppress

func f() int { return 0 }

func a() int { return f() }
`
	panicky := &Analyzer{
		Name: "panicky",
		Doc:  "test analyzer: reports once, then panics",
		Run: func(pass *Pass) (any, error) {
			pass.Reportf(pass.Files[0].Pos(), "partial finding that must be discarded")
			panic("analyzer bug")
		},
	}
	pkg := parsePackage(t, src)
	findings, err := RunPackage(pkg, []*Analyzer{panicky, callReporter})
	if err == nil || !strings.Contains(err.Error(), "panicky") {
		t.Fatalf("err = %v, want contained panic attributed to panicky", err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "callreporter" {
		t.Fatalf("findings = %v, want exactly callreporter's one", findings)
	}
}

// TestFileIgnoreScopedToFile: a //lint:file-ignore only covers the file that
// declares it. A blanket suppression in a _test.go file must not leak to the
// package's real sources.
func TestFileIgnoreScopedToFile(t *testing.T) {
	fset := token.NewFileSet()
	lib, err := parser.ParseFile(fset, "lib.go", `package suppress

func f() int { return 0 }

func a() int { return f() }
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tst, err := parser.ParseFile(fset, "lib_test.go", `package suppress

//lint:file-ignore callreporter tests may call whatever they like

func b() int { return f() }
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{
		Path:      "github.com/libra-wlan/libra/internal/fixtures/suppress",
		Fset:      fset,
		Files:     []*ast.File{lib, tst},
		TypesInfo: NewTypesInfo(),
	}
	conf := types.Config{}
	pkg.Pkg, err = conf.Check(pkg.Path, fset, pkg.Files, pkg.TypesInfo)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(pkg, []*Analyzer{callReporter})
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, f := range findings {
		files = append(files, filepath.Base(f.Pos.Filename))
	}
	if len(findings) != 1 || files[0] != "lib.go" {
		t.Fatalf("findings in %v, want exactly one in lib.go (file-ignore must not leak across files)", files)
	}
}

// TestLoadGenericsViaExportData: the export-data importer must handle a
// dependency that exports type parameters — the shape x/tools users get from
// modern modules. The temp module keeps the fixture out of the repo's own
// build graph.
func TestLoadGenericsViaExportData(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/genmod\n\ngo 1.21\n")
	write("genlib/genlib.go", `package genlib

// Pair is a generic two-tuple.
type Pair[A, B any] struct {
	First  A
	Second B
}

// Map applies f to every element of xs.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}
`)
	write("use/use.go", `package use

import "example.com/genmod/genlib"

// Doubled instantiates the generic import across the package boundary.
func Doubled(xs []int) []genlib.Pair[int, int] {
	return genlib.Map(xs, func(x int) genlib.Pair[int, int] {
		return genlib.Pair[int, int]{First: x, Second: 2 * x}
	})
}
`)
	pkgs, err := Load(dir, "./use")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors importing generics via export data: %v", pkg.TypeErrors)
	}
	scope := pkg.Pkg.Scope()
	obj := scope.Lookup("Doubled")
	if obj == nil {
		t.Fatal("Doubled not in scope")
	}
	sig := obj.Type().(*types.Signature)
	if got := sig.Results().At(0).Type().String(); !strings.Contains(got, "genlib.Pair[int, int]") {
		t.Errorf("instantiated result type = %q, want genlib.Pair[int, int] slice", got)
	}
	// The analyzers must run over it without tripping on type-param nodes.
	if _, err := RunPackage(pkg, []*Analyzer{callReporter}); err != nil {
		t.Fatal(err)
	}
}
