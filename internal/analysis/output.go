package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// Machine-readable output. Findings arrive fully sorted (RunN imposes a
// total order), both writers emit them in that order with a fixed field
// layout, and file paths are normalized relative to a base directory — so
// the bytes are identical for any worker count, which CI diffs rely on.

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// relTo normalizes a finding's filename relative to base for stable output;
// paths outside base (or with base empty) pass through unchanged.
func relTo(base, file string) string {
	if base == "" {
		return file
	}
	rel, err := filepath.Rel(base, file)
	if err != nil || len(rel) >= 2 && rel[:2] == ".." {
		return file
	}
	return filepath.ToSlash(rel)
}

// WriteJSON writes the findings as an indented JSON array (empty slice, not
// null, when there are none).
func WriteJSON(w io.Writer, base string, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relTo(base, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(out)
}

// SARIF 2.1.0, minimally: one run, one rule per analyzer, one result per
// finding. Enough for code-scanning upload and artifact diffing; nothing
// speculative.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes the findings as a SARIF 2.1.0 log. Rules are emitted
// sorted by analyzer name; results keep the findings' total order.
func WriteSARIF(w io.Writer, base string, findings []Finding, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relTo(base, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "libra-lint",
				InformationURI: "https://github.com/libra-wlan/libra",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(log)
}
