// Package decisionlog mirrors internal/obs/decisionlog: the audit-stream
// writer is //lint:clockfree — stage latencies arrive as plain u32 data
// stamped by the serving layer (which carries its own //lint:wallclock
// sanctions); the ring, the drain loop, and the container writer never
// read a clock, so the log bytes depend only on publish order.
//
//lint:clockfree audit log bytes must depend on publish order, not arrival time
package decisionlog

import "time"

// Record is one fixed-width audit record; latencies are plain data.
type Record struct {
	ReqID        uint64
	LatPredictNs uint32
}

// Ring is a bounded single-consumer queue of records.
type Ring struct {
	slots []Record
	head  int
	tail  int
}

// Publish copies the record in: clean — no clock, the latency field is
// caller-supplied data.
func (r *Ring) Publish(rec *Record) bool {
	if r.head-r.tail == len(r.slots) {
		return false
	}
	r.slots[r.head%len(r.slots)] = *rec
	r.head++
	return true
}

// Drain hands buffered records to the writer: clean.
func (r *Ring) Drain(emit func(*Record)) {
	for r.tail < r.head {
		emit(&r.slots[r.tail%len(r.slots)])
		r.tail++
	}
}

// badStamp fills the latency from the writer's own clock read instead of
// the caller's data — the exact corruption the directive exists to stop.
func badStamp(r *Ring, reqID uint64, t0 time.Time) bool { // want `//lint:clockfree package decisionlog: badStamp can reach the wall clock: badStamp`
	rec := Record{ReqID: reqID, LatPredictNs: uint32(time.Since(t0))}
	return r.Publish(&rec)
}
