// Package drift mirrors internal/obs/drift: a //lint:clockfree package.
// Every function — windowed statistics, monitors, helpers — is banned from
// reaching a wall-clock read through any call path, so windowed drift
// output provably depends on record order alone, never on arrival time.
//
//lint:clockfree windowed drift statistics must replay byte-identically
package drift

import "time"

// Window accumulates per-bin counts for one statistics window.
type Window struct {
	counts []uint64
	n      int
}

// Observe bins one value by index: clean — pure record-order arithmetic.
func (w *Window) Observe(bin int) {
	w.counts[bin]++
	w.n++
}

// psi is a pure statistic over proportions: clean.
func psi(ref, win []float64) float64 {
	var s float64
	for i := range ref {
		s += (win[i] - ref[i])
	}
	return s
}

// Roll computes the window statistic from counts alone: clean.
func (w *Window) Roll(ref []float64) float64 {
	win := make([]float64, len(w.counts))
	for i, c := range w.counts {
		win[i] = float64(c) / float64(w.n)
	}
	return psi(ref, win)
}

// stamp hides a wall-clock read one call deep — itself a violation here:
// clockfree bans every function in the package, helpers included.
func stamp() int64 { return time.Now().UnixNano() } // want `//lint:clockfree package drift: stamp can reach the wall clock: stamp`

// badRoll stamps the window close with the wall clock — in a clockfree
// package even an indirect reach is a violation.
func badRoll(w *Window) int64 { // want `//lint:clockfree package drift: badRoll can reach the wall clock: badRoll → stamp`
	_ = w.n
	return stamp()
}

// badDirect reads the clock in its own body: same violation, zero-length path.
func badDirect() time.Time { // want `//lint:clockfree package drift: badDirect can reach the wall clock: badDirect`
	return time.Now()
}
