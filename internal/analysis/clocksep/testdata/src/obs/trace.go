// Package obs mirrors internal/obs's two-clock layout so the clocksep tests
// can pin the graph property: sim-time tracer code (Tracer/Stream methods)
// must never reach a wall-clock read — not even through the annotated
// metrics helper — and no wall-clock value may land in a trace event field.
package obs

import "time"

// SimTime is the simulation clock: the only time allowed in trace output.
type SimTime float64

// Field is one key/value pair on a trace event.
type Field struct {
	K string
	V int64
}

// F builds a trace event field — a field sink for the taint check.
func F(k string, v int64) Field { return Field{K: k, V: v} }

// Event is one trace record stamped with simulation time.
type Event struct {
	T      SimTime
	Fields []Field
}

// Stream collects trace events; its methods are sim-time roots.
type Stream struct{ events []Event }

// Event appends one record. Clean: everything derives from the caller's
// simulation clock.
func (s *Stream) Event(t SimTime, fields ...Field) {
	s.events = append(s.events, Event{T: t, Fields: fields})
}

// StartTimer is the metrics side; the annotation sanctions the read for the
// determinism analyzer, but reachability from tracer code stays a violation.
//
//lint:wallclock engine-side latency metrics measure real elapsed time
func StartTimer() int64 { return time.Now().UnixNano() }

// stampHelper hides a clock read one call deep.
func stampHelper() int64 { return time.Now().UnixNano() }

// Tracer owns the trace stream; its methods are sim-time roots.
type Tracer struct{ last int64 }

// badFlush reaches the wall clock through an unannotated helper chain.
func (t *Tracer) badFlush() { // want `sim-time tracer \(\*Tracer\)\.badFlush can reach the wall clock: \(\*Tracer\)\.badFlush → stampHelper`
	t.last = stampHelper()
}

// badTimer reaches the wall clock through the annotated metrics helper: the
// //lint:wallclock sanction covers metrics, not tracer reachability.
func (t *Tracer) badTimer() { // want `sim-time tracer \(\*Tracer\)\.badTimer can reach the wall clock: \(\*Tracer\)\.badTimer → StartTimer`
	t.last = StartTimer()
}

// goodFlush stamps from the simulation clock only: clean.
func (t *Tracer) goodFlush(now SimTime) { t.last = int64(now) }

// emit passes a wall-clock value into a trace field: the taint check fires
// wherever the caller lives, tracer method or not.
func emit(s *Stream, now SimTime) {
	s.Event(now, F("wall", time.Now().UnixNano())) // want `wall-clock value flows into a trace event field`
}

// emitSim derives every field from the simulation clock: clean.
func emitSim(s *Stream, now SimTime) {
	s.Event(now, F("t", int64(now)))
}
