package clocksep_test

import (
	"testing"

	"github.com/libra-wlan/libra/internal/analysis/analysistest"
	"github.com/libra-wlan/libra/internal/analysis/clocksep"
)

func TestClocksep(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), clocksep.Analyzer,
		"obs", "drift", "decisionlog")
}
