// Package clocksep enforces the obs layer's two-clock separation as a call
// graph property. The trace stream is stamped with simulation time and
// promises byte-identical output for any worker count; the metrics side
// measures real elapsed time by design. The two must never meet: no call
// path may lead from sim-time tracer code (methods on the obs Tracer/Stream
// types) into a wall-clock read — not even a //lint:wallclock-annotated one
// like obs.StartTimer, since the annotation sanctions the read for metrics,
// not its use in trace output — and no wall-clock-tainted value may reach a
// trace event field (the obs.F/Fint/Ffloat constructors or a Stream.Event
// argument).
//
// The same reachability engine also enforces //lint:clockfree packages:
// a package whose doc carries the directive (the drift monitors and the
// decision-log writer) promises that NO function in it can reach a
// wall-clock read through any call path, so its output provably derives
// from record order and window indices alone.
package clocksep

import (
	"go/ast"
	"go/types"

	"github.com/libra-wlan/libra/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "clocksep",
	Doc: "enforces the obs two-clock rule interprocedurally: no call path " +
		"from sim-time tracer code (obs Tracer/Stream methods) to " +
		"time.Now/Since/Until — //lint:wallclock annotations sanction metrics " +
		"reads, not tracer reachability — no wall-clock-tainted value " +
		"passed to obs.F/Fint/Ffloat or Stream.Event trace fields, and no " +
		"function in a //lint:clockfree package reaching the wall clock at all",
	Run: run,
}

// tracerTypes are the obs type names whose methods form the sim-time side.
var tracerTypes = map[string]bool{"Tracer": true, "Stream": true}

// fieldCtors are the obs helpers that build trace event fields.
var fieldCtors = map[string]bool{"F": true, "Fint": true, "Ffloat": true}

func run(pass *analysis.Pass) (any, error) {
	if pass.Prog == nil {
		return nil, nil
	}
	var clockfree *analysis.Annotation
	if pass.Pkg != nil {
		clockfree = pass.Prog.PkgClockfree(pass.Pkg.Path())
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			node := pass.Prog.FuncAt(obj)
			if node == nil {
				continue
			}
			if isTracerMethod(pass, obj) {
				if path := pass.Prog.ClockReachable(node.ID); path != nil {
					pass.Reportf(fd.Pos(),
						"sim-time tracer %s can reach the wall clock: %s; trace output must derive its times from the simulation clock", node.Name(), analysis.PathString(path))
				}
			} else if clockfree != nil {
				if path := pass.Prog.ClockReachable(node.ID); path != nil {
					pass.Reportf(fd.Pos(),
						"//lint:clockfree package %s: %s can reach the wall clock: %s; drift/audit statistics must derive from record order and window indices, with latencies arriving as plain data", pass.Pkg.Name(), node.Name(), analysis.PathString(path))
				}
			}
			checkFieldArgs(pass, node)
		}
	}
	return nil, nil
}

// isTracerMethod reports whether fn is a method on an obs Tracer/Stream type.
func isTracerMethod(pass *analysis.Pass, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedRecv(sig.Recv().Type())
	return named != nil && tracerTypes[named.Obj().Name()] &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "obs"
}

// checkFieldArgs flags wall-clock-tainted values passed into trace event
// fields: arguments of obs.F/Fint/Ffloat and of Stream/Tracer method calls
// (Event and friends), in whatever package the caller lives.
func checkFieldArgs(pass *analysis.Pass, node *analysis.FuncNode) {
	info := pass.TypesInfo
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isFieldSink(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if pass.Prog.ClockTainted(node, arg) {
				pass.Reportf(arg.Pos(),
					"wall-clock value flows into a trace event field; trace bytes must be identical across runs — stamp the event from the simulation clock")
			}
		}
		return true
	})
}

// isFieldSink recognizes the obs field constructors and Tracer/Stream
// method calls.
func isFieldSink(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	var obj types.Object
	if ok {
		obj = info.ObjectOf(sel.Sel)
	} else if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID {
		obj = info.ObjectOf(id)
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		named := namedRecv(sig.Recv().Type())
		return named != nil && tracerTypes[named.Obj().Name()] &&
			named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "obs"
	}
	return fn.Pkg().Name() == "obs" && fieldCtors[fn.Name()]
}

func namedRecv(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
