package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Wall-clock taint. A value is clock-tainted when it derives from time.Now,
// time.Since, or time.Until — directly, through a helper's return value,
// through a package variable, or through a struct field (Stopwatch{t0:
// time.Now()}). The determinism analyzer uses the taint to catch
// interprocedural leaks like rand.NewSource(defaultSeed()) where defaultSeed
// returns time.Now().UnixNano(); the clocksep analyzer uses the direct-site
// index to prove no path from sim-time tracer code into the wall clock.

type clockFacts struct {
	// direct lists each function's direct wall-clock call positions.
	direct map[string][]token.Pos
	// returns marks functions whose return value carries clock taint.
	returns map[string]bool
	// vars marks clock-tainted package variables, keyed "pkgpath.Name".
	vars map[string]bool
	// fields marks clock-tainted struct fields, keyed
	// "pkgpath.TypeName.field" — names, not objects, so a field observed
	// through export data matches the one from source type-checking.
	fields map[string]bool
	// locals holds each function's clock-tainted local variables.
	locals map[string]map[types.Object]bool
}

// isClockSource reports whether fn is one of the wall-clock entry points.
func isClockSource(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return true
	}
	return false
}

// DirectClockSites returns the positions where the function reads the wall
// clock directly (time.Now/Since/Until calls in its own body).
func (p *Program) DirectClockSites(id string) []token.Pos { return p.clock.direct[id] }

// ReturnsClock reports whether the function's return value is clock-tainted.
func (p *Program) ReturnsClock(id string) bool { return p.clock.returns[id] }

// ClockTainted reports whether the expression, evaluated inside fn, carries
// wall-clock taint.
func (p *Program) ClockTainted(fn *FuncNode, e ast.Expr) bool {
	return p.clock.taintedExpr(fn.Pkg.TypesInfo, p.clock.locals[fn.ID], e)
}

// computeClockFacts seeds taint at the time.Now/Since/Until call sites and
// iterates a whole-program fixpoint: each round re-scans every function body,
// growing the tainted sets (locals, returns, package vars, struct fields)
// monotonically until a round changes nothing.
func computeClockFacts(p *Program) *clockFacts {
	f := &clockFacts{
		direct:  make(map[string][]token.Pos),
		returns: make(map[string]bool),
		vars:    make(map[string]bool),
		fields:  make(map[string]bool),
		locals:  make(map[string]map[types.Object]bool),
	}
	for _, fn := range p.order {
		f.locals[fn.ID] = make(map[types.Object]bool)
		info := fn.Pkg.TypesInfo
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := staticCallee(info, call); isClockSource(callee) {
				f.direct[fn.ID] = append(f.direct[fn.ID], call.Pos())
			}
			return true
		})
	}
	for changed, rounds := true, 0; changed && rounds < 32; rounds++ {
		changed = false
		for _, fn := range p.order {
			if f.propagate(fn) {
				changed = true
			}
		}
	}
	return f
}

// staticCallee resolves a call expression to its *types.Func when the callee
// is a plain function or method selection; nil otherwise.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// propagate runs one taint round over fn's body; reports whether any set grew.
func (f *clockFacts) propagate(fn *FuncNode) bool {
	info := fn.Pkg.TypesInfo
	locals := f.locals[fn.ID]
	changed := false
	taintLocal := func(obj types.Object) {
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok {
			if pkgLevelVar(v) {
				key := v.Pkg().Path() + "." + v.Name()
				if !f.vars[key] {
					f.vars[key] = true
					changed = true
				}
				return
			}
			if !locals[obj] {
				locals[obj] = true
				changed = true
			}
		}
	}
	taintLHS := func(lhs ast.Expr) {
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			taintLocal(info.ObjectOf(l))
		case *ast.SelectorExpr:
			if key := fieldKey(info, l); key != "" {
				if !f.fields[key] {
					f.fields[key] = true
					changed = true
				}
			} else if root := RootIdent(l); root != nil {
				taintLocal(info.ObjectOf(root))
			}
		case *ast.IndexExpr:
			if root := RootIdent(l); root != nil {
				taintLocal(info.ObjectOf(root))
			}
		case *ast.StarExpr:
			if root := RootIdent(l); root != nil {
				taintLocal(info.ObjectOf(root))
			}
		}
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				if f.taintedExpr(info, locals, n.Rhs[0]) {
					for _, lhs := range n.Lhs {
						taintLHS(lhs)
					}
				}
				return true
			}
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && f.taintedExpr(info, locals, rhs) {
					taintLHS(n.Lhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) > 1 {
				if f.taintedExpr(info, locals, n.Values[0]) {
					for _, name := range n.Names {
						taintLocal(info.ObjectOf(name))
					}
				}
				return true
			}
			for i, v := range n.Values {
				if i < len(n.Names) && f.taintedExpr(info, locals, v) {
					taintLocal(info.ObjectOf(n.Names[i]))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if f.taintedExpr(info, locals, r) && !f.returns[fn.ID] {
					f.returns[fn.ID] = true
					changed = true
				}
			}
			if len(n.Results) == 0 && !f.returns[fn.ID] {
				// Naked return: any tainted named result taints the return.
				if res := fn.Decl.Type.Results; res != nil {
					for _, field := range res.List {
						for _, name := range field.Names {
							if locals[info.ObjectOf(name)] {
								f.returns[fn.ID] = true
								changed = true
							}
						}
					}
				}
			}
		case *ast.CompositeLit:
			changed = f.taintCompositeFields(info, locals, n) || changed
		}
		return true
	})
	return changed
}

// taintCompositeFields records field taint from composite literals:
// Stopwatch{t0: time.Now()} marks obs.Stopwatch.t0 tainted program-wide.
func (f *clockFacts) taintCompositeFields(info *types.Info, locals map[types.Object]bool, lit *ast.CompositeLit) bool {
	t := info.TypeOf(lit)
	if t == nil {
		return false
	}
	named := namedOf(t)
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	changed := false
	mark := func(fieldName string) {
		key := typeKey(named) + "." + fieldName
		if !f.fields[key] {
			f.fields[key] = true
			changed = true
		}
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if f.taintedExpr(info, locals, kv.Value) {
				if id, ok := kv.Key.(*ast.Ident); ok {
					mark(id.Name)
				}
			}
			continue
		}
		if f.taintedExpr(info, locals, elt) && i < st.NumFields() {
			mark(st.Field(i).Name())
		}
	}
	return changed
}

// taintedExpr reports whether e carries clock taint under the current facts.
func (f *clockFacts) taintedExpr(info *types.Info, locals map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		// Conversion T(x): taint flows through (int64(now) is still now).
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			for _, arg := range e.Args {
				if f.taintedExpr(info, locals, arg) {
					return true
				}
			}
			return false
		}
		callee := staticCallee(info, e)
		if isClockSource(callee) {
			return true
		}
		if callee != nil && f.returns[callee.FullName()] {
			return true
		}
		// A method on a tainted receiver yields a tainted value
		// (t.UnixNano() with t a captured time.Now()).
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && callee != nil {
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				if f.taintedExpr(info, locals, sel.X) {
					return true
				}
			}
		}
		return false
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if locals[obj] {
			return true
		}
		if v, ok := obj.(*types.Var); ok && pkgLevelVar(v) {
			return f.vars[v.Pkg().Path()+"."+v.Name()]
		}
		return false
	case *ast.SelectorExpr:
		if key := fieldKey(info, e); key != "" && f.fields[key] {
			return true
		}
		// Qualified package var (pkg.Var) or field of a tainted base.
		if v, ok := info.ObjectOf(e.Sel).(*types.Var); ok && pkgLevelVar(v) {
			return f.vars[v.Pkg().Path()+"."+v.Name()]
		}
		return f.taintedExpr(info, locals, e.X)
	case *ast.BinaryExpr:
		return f.taintedExpr(info, locals, e.X) || f.taintedExpr(info, locals, e.Y)
	case *ast.UnaryExpr:
		return f.taintedExpr(info, locals, e.X)
	case *ast.StarExpr:
		return f.taintedExpr(info, locals, e.X)
	case *ast.IndexExpr:
		return f.taintedExpr(info, locals, e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if f.taintedExpr(info, locals, v) {
				return true
			}
		}
		return false
	}
	return false
}

// fieldKey renders a field selection as "pkgpath.TypeName.field" when the
// selector names a struct field of a named type; "" otherwise.
func fieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	named := namedOf(s.Recv())
	if named == nil {
		return ""
	}
	return typeKey(named) + "." + sel.Sel.Name
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func typeKey(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

func pkgLevelVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// ClockReachable computes, for the given root function, a shortest call path
// to any function with a direct wall-clock site (the root itself included).
// Only static edges and resolved interface candidates are followed — calls
// through plain func values cannot be traced. Returns the path as function
// display names ending at the clock-reading function, or nil.
func (p *Program) ClockReachable(rootID string) []string {
	type item struct {
		id   string
		prev int
	}
	var queue []item
	seen := map[string]bool{rootID: true}
	queue = append(queue, item{rootID, -1})
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		fn := p.Funcs[cur.id]
		if fn == nil {
			continue
		}
		if len(p.clock.direct[cur.id]) > 0 {
			var rev []string
			for j := i; j != -1; j = queue[j].prev {
				rev = append(rev, p.Funcs[queue[j].id].Name())
			}
			for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
				rev[l], rev[r] = rev[r], rev[l]
			}
			return rev
		}
		for _, c := range fn.Calls {
			var nexts []string
			switch c.Kind {
			case CallStatic:
				if c.Callee != nil {
					nexts = []string{c.Callee.FullName()}
				}
			case CallIface:
				nexts = c.Candidates
			}
			for _, id := range nexts {
				if !seen[id] && p.Funcs[id] != nil {
					seen[id] = true
					queue = append(queue, item{id, i})
				}
			}
		}
	}
	return nil
}
