package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// The reviewed baseline. A baseline file records known findings as
//
//	<file>\t<analyzer>\t<message>
//
// lines (blank lines and #-comments tolerated), and the driver drops any
// finding whose (file, analyzer, message) triple appears there. Line and
// column are deliberately not part of the key: a baseline must survive
// unrelated edits shifting code around, and a finding whose message changed
// is a different finding. Counts matter — a triple listed once suppresses
// every identical occurrence in that file, which keeps review pressure on
// making messages specific rather than on re-recording baselines.

// A Baseline is the parsed set of accepted findings.
type Baseline struct {
	keys map[string]bool
}

func baselineKey(base string, f Finding) string {
	return relTo(base, f.Pos.Filename) + "\t" + f.Analyzer + "\t" + f.Message
}

// LoadBaseline reads the baseline at path. A missing file is an empty
// baseline, so fresh checkouts and baseline-free repos need no stub file.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{keys: make(map[string]bool)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("%s:%d: malformed baseline line (want file<TAB>analyzer<TAB>message)", path, ln)
		}
		b.keys[line] = true
	}
	return b, sc.Err()
}

// Filter returns the findings not covered by the baseline, preserving order.
func (b *Baseline) Filter(base string, findings []Finding) []Finding {
	if len(b.keys) == 0 {
		return findings
	}
	out := findings[:0:0]
	for _, f := range findings {
		if !b.keys[baselineKey(base, f)] {
			out = append(out, f)
		}
	}
	return out
}

// WriteBaseline writes the findings as a baseline file: deduplicated keys,
// sorted, with a header explaining the contract.
func WriteBaseline(w io.Writer, base string, findings []Finding) error {
	seen := make(map[string]bool)
	var keys []string
	for _, f := range findings {
		k := baselineKey(base, f)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if _, err := fmt.Fprintf(w, "# libra-lint baseline: reviewed findings accepted as-is.\n"+
		"# One finding per line: <file>\\t<analyzer>\\t<message>. Line numbers are\n"+
		"# deliberately excluded so unrelated edits don't invalidate the baseline.\n"+
		"# Regenerate with: go run ./cmd/libra-lint -write-baseline lint.baseline ./...\n"); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintln(w, k); err != nil {
			return err
		}
	}
	return nil
}
