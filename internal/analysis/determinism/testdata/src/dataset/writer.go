// Package dataset mirrors the libra-ds streaming chunk writer so the
// determinism tests pin what the analyzer must (and must not) flag in the
// encode pipeline: sharded workers with a strict in-order commit are clean,
// while wall-clock frame stamps, scheduling-dependent chunk order, and
// unsorted column-map walks are exactly the bugs that would break the
// byte-identical-for-any-worker-count contract.
package dataset

import (
	"math/rand"
	"sort"
	"time"
)

// chunk is one encoded column block awaiting its in-order commit.
type chunk struct {
	index int
	data  []byte
}

// --- negatives -----------------------------------------------------------

// encodeSharded mirrors WriteLDS's bounded pipeline: workers encode
// concurrently, the consumer commits strictly by submission index, so the
// output bytes cannot depend on goroutine scheduling. Nothing here is
// flagged — concurrency is fine when the merge order is pinned.
func encodeSharded(rows, chunkRows int, encode func(lo, hi int) []byte) [][]byte {
	n := (rows + chunkRows - 1) / chunkRows
	results := make([]chan chunk, n)
	for i := range results {
		results[i] = make(chan chunk, 1)
	}
	for i := 0; i < n; i++ {
		go func(i int) {
			lo := i * chunkRows
			hi := lo + chunkRows
			if hi > rows {
				hi = rows
			}
			results[i] <- chunk{index: i, data: encode(lo, hi)}
		}(i)
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, (<-results[i]).data)
	}
	return out
}

// footerNames walks the column dictionary in sorted order before writing it
// into the footer: collect-then-sort launders map order back out.
func footerNames(dict map[string]uint16) []string {
	names := make([]string, 0, len(dict))
	for name := range dict {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// rowTotal counts rows across chunks with integer accumulation, which
// commutes exactly and is therefore order-independent.
func rowTotal(rowsPerChunk map[int]int) int {
	total := 0
	for _, n := range rowsPerChunk {
		total += n
	}
	return total
}

// seededJitter draws from a generator plumbed in by the caller — the
// sanctioned randomness source for synthetic campaign noise.
func seededJitter(rng *rand.Rand, sigma float64) float64 {
	return rng.NormFloat64() * sigma
}

// --- positives -----------------------------------------------------------

// stampFrame writes a creation timestamp into the chunk frame, making the
// container bytes differ between two runs over identical campaigns.
func stampFrame(frame []byte) {
	t := time.Now() // want `time\.Now makes output wall-clock-dependent`
	_ = t.UnixNano()
}

// shuffledOrder randomizes chunk commit order from the process-global
// source — both the nondeterministic order and the global draw are flagged.
func shuffledOrder(chunks []chunk) {
	rand.Shuffle(len(chunks), func(i, j int) { // want `rand\.Shuffle draws from the process-global source`
		chunks[i], chunks[j] = chunks[j], chunks[i]
	})
}

// footerNamesUnsorted writes the dictionary in map order: the footer bytes
// would vary run to run.
func footerNamesUnsorted(dict map[string]uint16) []string {
	var names []string
	for name := range dict {
		names = append(names, name) // want `append to names inside range over a map`
	}
	return names
}

// columnChecksum folds float column sums in map order: float addition does
// not commute bit-exactly, so the digest depends on iteration order.
func columnChecksum(sums map[string]float64) float64 {
	var digest float64
	for _, s := range sums {
		digest += s // want `float accumulation into digest inside range over a map`
	}
	return digest
}
