// Package determfix seeds one violation per determinism rule (want-annotated)
// next to the clean idiom that must stay unflagged.
package determfix

import (
	"math/rand"
	"sort"
	"time"
)

// --- positives -----------------------------------------------------------

func wallClock() int64 {
	t := time.Now() // want `time\.Now makes output wall-clock-dependent`
	return t.UnixNano()
}

func globalDraws() float64 {
	n := rand.Intn(8)                  // want `rand\.Intn draws from the process-global source`
	return rand.Float64() + float64(n) // want `rand\.Float64 draws from the process-global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global source`
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time\.Now makes output wall-clock-dependent` `rand\.NewSource seeded from the wall clock`
}

func mapFloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside range over a map`
	}
	return sum
}

func mapAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over a map`
	}
	return keys
}

// --- negatives -----------------------------------------------------------

// seeded generators plumbed in are the sanctioned source of randomness.
func seededDraw(rng *rand.Rand) float64 { return rng.Float64() }

func configSeed(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// collect-then-sort launders map order back into a deterministic sequence.
func mapKeysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// integer accumulation commutes exactly: order-independent.
func mapCount(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// per-key bucket appends touch each bucket exactly once.
func mapBuckets(m map[string]float64) map[string][]float64 {
	out := map[string][]float64{}
	for k, v := range m {
		out[k] = append(out[k], v)
	}
	return out
}

// per-key map writes are order-independent.
func mapInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// float accumulation over a slice is ordered: fine.
func sliceSum(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// a justified suppression silences the finding and documents why.
func suppressed() int64 {
	//lint:ignore determinism fixture demonstrates a justified suppression
	return time.Now().UnixNano()
}
