package obs

// pureCompute pins the verification half of the annotation contract: the
// wall-clock reads this annotation once sanctioned are gone, so the
// annotation itself is reported — a stale sanction is a lie in the source.

//lint:wallclock legacy histogram stamp, reads removed long ago // want `stale //lint:wallclock annotation: pureCompute contains no wall-clock reads`
func pureCompute(a, b int) int { return a + b }
