package obs

import "time"

// badStamp is the tracer side of the obs contract: trace*.go promises
// byte-identical output for any worker count, so wall-clock reads are
// flagged even though the surrounding package is obs.
func badStamp() int64 {
	t := time.Now()   // want `time\.Now makes output wall-clock-dependent`
	_ = time.Since(t) // want `time\.Since makes output wall-clock-dependent`
	return t.UnixNano()
}
