package obs

import "time"

// badStamp is the tracer side of the obs contract: trace output promises
// byte-identical bytes for any worker count, so its wall-clock reads carry
// no //lint:wallclock annotation and stay flagged even though annotated
// metrics functions live in the same package.
func badStamp() int64 {
	t := time.Now()   // want `time\.Now makes output wall-clock-dependent`
	_ = time.Since(t) // want `time\.Since makes output wall-clock-dependent`
	return t.UnixNano()
}
