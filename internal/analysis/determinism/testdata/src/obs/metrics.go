// Package obs mirrors internal/obs's file layout so the determinism tests
// can pin the analyzer's carve-out: wall-clock reads in the package's
// metrics files are sanctioned, while the same reads in trace*.go stay
// flagged (see trace.go in this fixture).
package obs

import "time"

// Stopwatch mirrors the sanctioned metrics timer. Wall-clock reads here are
// the point — engine-side diagnostics measure real elapsed time — so neither
// call below carries a want annotation.
type Stopwatch struct{ t0 time.Time }

func StartTimer() Stopwatch { return Stopwatch{t0: time.Now()} }

func (s Stopwatch) Elapsed() float64 { return time.Since(s.t0).Seconds() }
