// Package obs mirrors internal/obs so the determinism tests can pin the
// annotation contract that replaced the old per-file carve-out: wall-clock
// reads are sanctioned only by a //lint:wallclock annotation on the reading
// function, and the same reads in the unannotated sim-time tracer (see
// trace.go in this fixture) stay flagged.
package obs

import "time"

// Stopwatch mirrors the sanctioned metrics timer. Wall-clock reads here are
// the point — engine-side diagnostics measure real elapsed time — so both
// functions carry the annotation and neither call below is flagged.
type Stopwatch struct{ t0 time.Time }

//lint:wallclock engine-side latency metrics measure real elapsed time
func StartTimer() Stopwatch { return Stopwatch{t0: time.Now()} }

//lint:wallclock engine-side latency metrics measure real elapsed time
func (s Stopwatch) Elapsed() float64 { return time.Since(s.t0).Seconds() }
