// Package cmdexempt verifies the cmd/ scope exemption: command binaries may
// read the wall clock (dated bench snapshots, progress timers), so none of
// these lines carry a want annotation.
package cmdexempt

import (
	"math/rand"
	"time"
)

func stamp() string { return time.Now().Format("2006-01-02") }

func jitter() float64 { return rand.Float64() }
