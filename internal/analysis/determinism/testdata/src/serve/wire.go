package serve

import "time"

// badWireStamp pins the codec side of the serve contract: wire*.go is the
// binary protocol's pure frame arithmetic — encoding the same request must
// produce the same bytes on every host — so wall-clock reads are flagged
// even though the surrounding package is serve.
func badWireStamp() int64 {
	t := time.Now()   // want `time\.Now makes output wall-clock-dependent`
	_ = time.Since(t) // want `time\.Since makes output wall-clock-dependent`
	return t.UnixNano()
}
