package serve

import "time"

// badWireStamp pins the codec side of the contract: the binary protocol is
// pure frame arithmetic — encoding the same request must produce the same
// bytes on every host — so its wall-clock reads stay unannotated and flagged.
func badWireStamp() int64 {
	t := time.Now()   // want `time\.Now makes output wall-clock-dependent`
	_ = time.Since(t) // want `time\.Since makes output wall-clock-dependent`
	return t.UnixNano()
}
