package serve

import "time"

// badRingSeed pins the ring side of the serve contract: ring*.go holds the
// consistent-hash shard router's placement math, which must assign every
// link the same shard in every process, so wall-clock reads are flagged
// even though the surrounding package is serve.
func badRingSeed() int64 {
	t := time.Now()   // want `time\.Now makes output wall-clock-dependent`
	_ = time.Since(t) // want `time\.Since makes output wall-clock-dependent`
	return t.UnixNano()
}
