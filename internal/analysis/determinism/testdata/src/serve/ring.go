package serve

import "time"

// badRingSeed pins the shard router's placement math: it must assign every
// link the same shard in every process, so its unannotated wall-clock reads
// are flagged even though annotated serving functions share the package.
func badRingSeed() int64 {
	t := time.Now()   // want `time\.Now makes output wall-clock-dependent`
	_ = time.Since(t) // want `time\.Since makes output wall-clock-dependent`
	return t.UnixNano()
}
