// Package serve mirrors internal/serve so the determinism tests can pin the
// annotation contract that replaced the old per-file carve-out: the serving
// layer's wall-clock reads (request deadlines, batch lingers) are sanctioned
// by //lint:wallclock annotations on the reading functions, while every
// unannotated read in the package — the regression the old carve-out could
// never catch — is flagged (see the sibling fixtures).
package serve

import "time"

// latency mirrors the sanctioned serving-side wall-clock use: request
// deadlines and batch lingers measure real elapsed time by design.

//lint:wallclock request deadlines and batch lingers measure real elapsed time
func latency() float64 {
	t0 := time.Now()
	return time.Since(t0).Seconds()
}
