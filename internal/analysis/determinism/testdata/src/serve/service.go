// Package serve mirrors internal/serve's file layout so the determinism
// tests can pin the analyzer's carve-out: wall-clock reads in the serving
// layer's engine files are sanctioned, while the same reads in its
// deterministic sources — the replay request stream (replay*.go), the
// consistent-hash ring (ring*.go), and the binary wire codec (wire*.go) —
// stay flagged (see the like-named fixtures beside this file).
package serve

import "time"

// latency mirrors the sanctioned serving-side wall-clock use: request
// deadlines and batch lingers measure real elapsed time by design, so
// neither call below carries a want annotation.
func latency() float64 {
	t0 := time.Now()
	return time.Since(t0).Seconds()
}
