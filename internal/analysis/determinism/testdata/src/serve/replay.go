package serve

import "time"

// badReplaySeed is the regression the annotation model fixes for good: under
// the old per-file carve-out a wall-clock read anywhere in an engine file of
// internal/serve was silently sanctioned; now every read without its own
// //lint:wallclock annotation is caught, whatever file it lands in.
func badReplaySeed() int64 {
	t := time.Now()   // want `time\.Now makes output wall-clock-dependent`
	_ = time.Since(t) // want `time\.Since makes output wall-clock-dependent`
	return t.UnixNano()
}
