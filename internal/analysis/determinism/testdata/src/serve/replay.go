package serve

import "time"

// badReplaySeed is the replay side of the serve contract: replay*.go
// promises a reproducible fixed-seed request stream, so wall-clock reads
// are flagged even though the surrounding package is serve.
func badReplaySeed() int64 {
	t := time.Now()   // want `time\.Now makes output wall-clock-dependent`
	_ = time.Since(t) // want `time\.Since makes output wall-clock-dependent`
	return t.UnixNano()
}
