package serve

import (
	"math/rand"
	"time"
)

// The interprocedural leak the syntactic v1 analyzer could never see: the
// wall clock flows through a helper's return value (and through a struct
// field) into a rand seed. The helpers are //lint:wallclock-annotated — the
// reads themselves are sanctioned — but the taint survives the annotation:
// sanctioning a read does not make the value deterministic, so seeding a
// generator from it is still flagged at the rand.NewSource call.

//lint:wallclock deadline bookkeeping helper; callers must not seed from it
func wallSeed() int64 { return time.Now().UnixNano() }

func leakedSeed() *rand.Rand {
	return rand.New(rand.NewSource(wallSeed())) // want `rand\.NewSource seeded from the wall clock`
}

// stamp carries the taint through a struct field: the composite literal in
// newStamp taints stamp.t0 program-wide, and reading it back out in
// stampSeed poisons the seed.
type stamp struct{ t0 time.Time }

//lint:wallclock deadline bookkeeping helper; callers must not seed from it
func newStamp() stamp { return stamp{t0: time.Now()} }

func stampSeed(s stamp) *rand.Rand {
	return rand.New(rand.NewSource(s.t0.UnixNano())) // want `rand\.NewSource seeded from the wall clock`
}
