package determinism_test

import (
	"testing"

	"github.com/libra-wlan/libra/internal/analysis/analysistest"
	"github.com/libra-wlan/libra/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer,
		"determfix", "cmdexempt", "obs", "serve", "dataset")
}
