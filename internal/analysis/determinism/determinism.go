// Package determinism forbids wall-clock and process-global randomness in
// the reproduction pipeline. The campaign and ML engines promise
// byte-identical output for any worker count; that contract dies the moment
// a package reads time.Now or time.Since, draws from the global math/rand
// source, or folds map-iteration order into a float accumulation or a slice.
// Seeded *rand.Rand values must be plumbed in explicitly; wall-clock reads
// are sanctioned only by a //lint:wallclock annotation carrying its reason,
// and the annotation itself is verified — annotating a function the engine
// proves clock-free is reported as stale.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/libra-wlan/libra/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbids time.Now/time.Since/time.Until, global math/rand draws, " +
		"wall-clock rand seeds (tracked interprocedurally: a seed helper that " +
		"returns time.Now().UnixNano() taints rand.NewSource in its callers), " +
		"and iteration-order-dependent accumulation over map ranges in the " +
		"library packages (internal/..., examples/..., and the root package); " +
		"cmd/ binaries are exempt. Functions that legitimately read the wall " +
		"clock — latency metrics, request deadlines, batch lingers — carry a " +
		"//lint:wallclock <reason> annotation (function doc, or package doc to " +
		"sanction a whole package); a stale annotation on a provably " +
		"clock-free function is itself reported",
	Run: run,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared process-wide source. Constructors (New, NewSource, NewZipf) are
// fine: they produce plumbable generators.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// sortFuncs recognizes the "collect keys, then sort" idiom that launders
// map-iteration order back into a deterministic sequence.
var sortFuncs = map[string]bool{
	// package sort
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	// package slices
	"SortFunc": true, "SortStableFunc": true,
}

func run(pass *analysis.Pass) (any, error) {
	if exemptPackage(pass.Pkg) {
		return nil, nil
	}
	pkgAnnot := pkgWallclock(pass)
	pkgHasClock := false

	for _, f := range pass.Files {
		// Function bodies: clock sites are judged against the enclosing
		// function's (or package's) //lint:wallclock annotation, and seeds
		// are checked with the interprocedural taint facts.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := fnNode(pass, fd)
			sanctioned := pkgAnnot != nil || (node != nil && node.Wallclock != nil)
			direct := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					direct = checkCall(pass, node, n, sanctioned) || direct
				case *ast.RangeStmt:
					checkMapRange(pass, f, n)
				}
				return true
			})
			pkgHasClock = pkgHasClock || direct
			if node != nil && node.Wallclock != nil && !direct {
				pass.Reportf(node.Wallclock.Pos,
					"stale //lint:wallclock annotation: %s contains no wall-clock reads; delete the annotation or the sanction outlives its reason", node.Name())
			}
		}
		// Package-level initializers have no function to annotate; only a
		// package-level annotation sanctions them.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				direct := checkCall(pass, nil, call, pkgAnnot != nil)
				pkgHasClock = pkgHasClock || direct
				return true
			})
		}
	}

	if pkgAnnot != nil && !pkgHasClock {
		pass.Reportf(pkgAnnot.Pos,
			"stale //lint:wallclock annotation: package %s contains no wall-clock reads; delete the annotation or the sanction outlives its reason", pass.Pkg.Name())
	}
	return nil, nil
}

// exemptPackage exempts command binaries: dated bench snapshots and
// wall-clock progress reporting are their job. Everything else — the
// library, internal engines, and runnable examples — must be reproducible.
func exemptPackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return strings.Contains(pkg.Path()+"/", "/cmd/")
}

// pkgWallclock returns the package-level //lint:wallclock annotation, if any.
func pkgWallclock(pass *analysis.Pass) *analysis.Annotation {
	if pass.Prog == nil || pass.Pkg == nil {
		return nil
	}
	return pass.Prog.PkgWallclock(pass.Pkg.Path())
}

// fnNode resolves the declaration to its call-graph node, or nil.
func fnNode(pass *analysis.Pass, fd *ast.FuncDecl) *analysis.FuncNode {
	if pass.Prog == nil {
		return nil
	}
	obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	return pass.Prog.FuncAt(obj)
}

// checkCall handles the call-shaped violations: direct wall-clock reads
// (unless sanctioned) and global/clock-seeded randomness. It reports whether
// the call is a direct wall-clock read, sanctioned or not — the signal the
// stale-annotation check needs.
func checkCall(pass *analysis.Pass, node *analysis.FuncNode, call *ast.CallExpr, sanctioned bool) bool {
	callee := calleeFunc(pass, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "time":
		switch callee.Name() {
		case "Now", "Since", "Until":
			if !sanctioned {
				pass.Reportf(call.Pos(),
					"time.%s makes output wall-clock-dependent; plumb an explicit timestamp, derive times from the simulation clock, route the measurement through an obs metric, or annotate the function //lint:wallclock <reason>", callee.Name())
			}
			return true
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[callee.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the process-global source; plumb a seeded *rand.Rand instead", callee.Name())
		}
		if callee.Name() == "NewSource" && seededFromClock(pass, node, call) {
			pass.Reportf(call.Pos(),
				"rand.NewSource seeded from the wall clock is unreproducible; derive the seed from configuration")
		}
	}
	return false
}

// seededFromClock reports whether any argument carries wall-clock taint —
// through the interprocedural facts when available (a helper returning
// time.Now().UnixNano() taints its callers' seeds), falling back to the
// syntactic "contains a time.* call" test.
func seededFromClock(pass *analysis.Pass, node *analysis.FuncNode, call *ast.CallExpr) bool {
	if pass.Prog != nil && node != nil {
		for _, arg := range call.Args {
			if pass.Prog.ClockTainted(node, arg) {
				return true
			}
		}
	}
	return containsTimeCall(pass, call)
}

// calleeFunc resolves a call to a package-level *types.Func, or nil for
// method calls, conversions, and locals.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.ObjectOf(id).(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// containsTimeCall reports whether any call to a time-package function
// occurs inside e (e.g. rand.NewSource(time.Now().UnixNano())).
func containsTimeCall(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			found = true
		}
		return !found
	})
	return found
}

// checkMapRange flags range-over-map bodies whose effects depend on
// iteration order: appending to an outer slice (unless the slice is sorted
// later in the same function) or accumulating into an outer float. Integer
// accumulation and map-to-map writes are order-independent and stay legal.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				checkFloatAccum(pass, rng, lhs)
			}
		case token.ASSIGN:
			for i, lhs := range as.Lhs {
				if i < len(as.Rhs) && isAppendTo(pass, lhs, as.Rhs[i]) {
					checkOrderedAppend(pass, file, rng, lhs)
				}
			}
		}
		return true
	})
}

// checkFloatAccum reports lhs op= ... when lhs is a float declared outside
// the range statement: float addition is not associative, so the sum depends
// on map iteration order.
func checkFloatAccum(pass *analysis.Pass, rng *ast.RangeStmt, lhs ast.Expr) {
	root := analysis.RootIdent(lhs)
	if root == nil || !analysis.DeclaredOutside(pass, root, rng.Pos(), rng.End()) {
		return
	}
	if t := pass.TypesInfo.TypeOf(lhs); t == nil || !isFloat(t) {
		return
	}
	// Indexed writes (buf[key] += x) into an outer map/slice keyed by the
	// range variable are order-independent per element; only scalar or
	// fixed-cell accumulation depends on visit order. An index expression
	// that itself varies per iteration is therefore exempt.
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && !constantWithinRange(pass, idx.Index, rng) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"float accumulation into %s inside range over a map depends on iteration order; iterate sorted keys or accumulate per key", root.Name)
}

// constantWithinRange reports whether the index expression is invariant
// across iterations (only outer identifiers and literals), meaning every
// iteration folds into the same cell.
func constantWithinRange(pass *analysis.Pass, idx ast.Expr, rng *ast.RangeStmt) bool {
	invariant := true
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil && obj.Pos() != token.NoPos &&
			obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			invariant = false
		}
		return invariant
	})
	return invariant
}

// isAppendTo reports whether rhs is append(lhs, ...) growing the same
// variable it is assigned to.
func isAppendTo(pass *analysis.Pass, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	lr, ar := analysis.RootIdent(lhs), analysis.RootIdent(call.Args[0])
	return lr != nil && ar != nil &&
		pass.TypesInfo.ObjectOf(lr) == pass.TypesInfo.ObjectOf(ar)
}

// checkOrderedAppend flags appends to an outer slice inside a map range
// unless the enclosing function later sorts that slice ("collect then sort"
// is the sanctioned way to walk a map deterministically).
func checkOrderedAppend(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, lhs ast.Expr) {
	root := analysis.RootIdent(lhs)
	if root == nil || !analysis.DeclaredOutside(pass, root, rng.Pos(), rng.End()) {
		return
	}
	// Per-key bucket appends (buckets[k] = append(buckets[k], v) with k the
	// range variable) touch each bucket once per key: order-independent.
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && !constantWithinRange(pass, idx.Index, rng) {
		return
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil || sortedAfter(pass, file, rng, obj) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"append to %s inside range over a map records iteration order; sort %s afterwards or iterate sorted keys", root.Name, root.Name)
}

// sortedAfter reports whether, after the range statement, the enclosing
// function calls a sort/slices ordering function on obj.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	var fn ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= rng.Pos() && rng.End() <= n.End() {
				fn = n // innermost wins: keep descending
			}
		}
		return true
	})
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if pkg := callee.Pkg().Path(); (pkg == "sort" || pkg == "slices") && sortFuncs[callee.Name()] {
			for _, arg := range call.Args {
				if r := analysis.RootIdent(arg); r != nil && pass.TypesInfo.ObjectOf(r) == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
