// Package analysis is a self-contained, stdlib-only re-implementation of the
// core golang.org/x/tools/go/analysis API surface (Analyzer, Pass,
// Diagnostic) plus a `go list -export`-backed package loader and a
// multichecker driver. It exists because the repo vendors no third-party
// modules: the linters under internal/analysis/... machine-enforce the
// determinism, unit-safety, and config-immutability contracts that the
// parallel campaign and ML engines promise, and they must build from a bare
// toolchain.
//
// The API mirrors x/tools closely enough that the analyzers themselves (and
// their analysistest-style golden tests) could be ported to the upstream
// framework by swapping import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, a doc string describing the
// invariant it guards, and a Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> reason" suppression comments.
	Name string

	// Doc is the one-paragraph description shown by `libra-lint -help`.
	Doc string

	// Run applies the check to one type-checked package. Diagnostics are
	// delivered through pass.Report; the result value is unused by the
	// driver and exists only for API compatibility.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass is one (analyzer, package) unit of work, carrying the syntax trees
// and type information the analyzer inspects.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the interprocedural view: call graph and fact summaries over
	// every package of the run. The contract analyzers (determinism v2,
	// noalloc, clocksep) consult it; purely syntactic analyzers may ignore
	// it. The driver always populates it.
	Prog *Program

	// Report delivers one diagnostic. The driver installs a collector
	// here; analyzers usually call Reportf instead.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned against the shared FileSet.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
}
