// Package noallocfix seeds one violation per noalloc rule (want-annotated)
// next to the clean idiom that must stay unflagged: the amortized warm-up
// guard, in-place append into caller-owned buffers, annotated and proven
// allocation-free callees, and the allowlisted external calls.
package noallocfix

import (
	"encoding/binary"
	"math"
	"strconv"
	"sync/atomic"
)

// scratch is the reusable-buffer shape the hot paths share.
type scratch struct {
	buf  []float64
	hits uint64
}

// --- positives -----------------------------------------------------------

//lint:noalloc seeded violation: direct allocation sites
func badSites(s *scratch, n int, key string) float64 {
	s.buf = make([]float64, n) // want `allocation in //lint:noalloc function badSites: make allocates`
	p := new(float64)          // want `allocation in //lint:noalloc function badSites: new allocates`
	xs := []float64{1, 2, 3}   // want `allocation in //lint:noalloc function badSites: slice literal allocates`
	_ = key + "!"              // want `allocation in //lint:noalloc function badSites: string concatenation allocates`
	_ = []byte(key)            // want `allocation in //lint:noalloc function badSites: string↔\[\]byte conversion copies and allocates`
	return *p + xs[0]
}

//lint:noalloc seeded violation: growing append and map write
func badGrow(s *scratch, counts map[string]int, key string, v float64) {
	local := []float64(nil)
	local = append(local, v) // want `allocation in //lint:noalloc function badGrow: append may grow and allocate`
	counts[key]++            // want `allocation in //lint:noalloc function badGrow: map write may allocate`
	_ = local
}

//lint:noalloc seeded violation: escaping composite and closure capture
func badEscape(v float64) func() float64 {
	p := &scratch{}         // want `allocation in //lint:noalloc function badEscape: &composite literal escapes to the heap`
	return func() float64 { // want `allocation in //lint:noalloc function badEscape: closure captures variables and allocates`
		return v + float64(p.hits)
	}
}

// allocHelper is unannotated and allocates: calling it from a noalloc
// function is the interprocedural violation the fact engine exists to catch.
func allocHelper(n int) []float64 { return make([]float64, n) }

//lint:noalloc seeded violation: allocating unannotated callee
func badCallee(n int) float64 {
	xs := allocHelper(n) // want `//lint:noalloc function badCallee calls allocHelper, which allocates`
	return xs[0]
}

//lint:noalloc seeded violation: external callee not on the allowlist
func badExtern(i int) int {
	return len(strconv.Itoa(i)) // want `//lint:noalloc function badExtern calls strconv\.Itoa \(external, not known allocation-free\)`
}

//lint:noalloc seeded violation: call through a func value
func badDynamic(f func() int) int {
	return f() // want `//lint:noalloc function badDynamic calls through a func value`
}

// summer's implementations below are resolved class-hierarchy style; the
// allocating one poisons every call through the interface.
type summer interface{ sum(xs []float64) float64 }

type allocSummer struct{}

func (allocSummer) sum(xs []float64) float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	t := 0.0
	for _, v := range tmp {
		t += v
	}
	return t
}

type cleanSummer struct{ total float64 }

func (c *cleanSummer) sum(xs []float64) float64 {
	c.total = 0
	for _, v := range xs {
		c.total += v
	}
	return c.total
}

//lint:noalloc seeded violation: interface call with an allocating implementation
func badIface(s summer, xs []float64) float64 {
	return s.sum(xs) // want `//lint:noalloc function badIface calls interface method sum; implementation`
}

// --- negatives -----------------------------------------------------------

// freeHelper is unannotated but provably allocation-free: the fact engine
// clears calls to it without an annotation.
func freeHelper(xs []float64) float64 {
	t := 0.0
	for _, v := range xs {
		t += math.Abs(v)
	}
	return t
}

//lint:noalloc steady-state hot path: warm-up guard, in-place appends, clean callees
func goodPath(s *scratch, dst []float64, xs []float64) []float64 {
	if cap(s.buf) < len(xs) {
		s.buf = make([]float64, 0, len(xs)) // amortized: guarded by the cap check
	}
	tmp := s.buf[:0]
	for _, v := range xs {
		tmp = append(tmp, v*v)         // in-place into receiver-owned storage
		dst = append(dst, math.Abs(v)) // in-place into the caller's buffer
	}
	atomic.AddUint64(&s.hits, 1)
	_ = freeHelper(tmp)
	return dst
}

//lint:noalloc annotated callee chain: the annotation is trusted interprocedurally
func goodChain(s *scratch, dst []float64, xs []float64) []float64 {
	return goodPath(s, dst, xs)
}

// suppressed documents a reviewed exception in place: the line-level escape
// hatch still works inside an annotated function.
//
//lint:noalloc cold start builds the table once
func suppressed(n int) []float64 {
	//lint:ignore noalloc one-time table build, measured cold
	return make([]float64, n)
}

// --- audit-stream publish idioms (internal/obs/decisionlog) --------------
//
// The decision-telemetry hot path adds three shapes the analyzer must keep
// clearing: hash-mix sampling arithmetic, the fixed-slot MPSC ring publish
// (atomics plus a copy into pre-allocated storage), and little-endian
// record encoding appended into a caller-owned buffer.

// auditRing mirrors the decision-log producer side: slots and sequence
// numbers sized once at construction, a CAS'd head, drop-on-full.
type auditRing struct {
	head  uint64
	slots [][]byte
	seq   []uint64
}

// hashMix is the splitmix64 finalizer the deterministic sampler keys on.
//
//lint:noalloc pure integer mixing on the sampling gate
func hashMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

//lint:noalloc per-decision 1-in-N sampling predicate
func sampled(n, reqID, linkID uint64) bool {
	if n <= 1 {
		return true
	}
	return hashMix(reqID^hashMix(linkID))%n == 0
}

//lint:noalloc ring publish copies into a pre-allocated slot; full rings drop, never grow
func (r *auditRing) publish(rec []byte) bool {
	h := atomic.AddUint64(&r.head, 1) - 1
	i := h % uint64(len(r.slots))
	if atomic.LoadUint64(&r.seq[i]) != h {
		return false
	}
	copy(r.slots[i], rec)
	atomic.StoreUint64(&r.seq[i], h+1)
	return true
}

//lint:noalloc record encode appends fixed-width fields into the caller's buffer
func encodeAudit(dst []byte, reqID, linkID uint64, feat []float64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = binary.LittleEndian.AppendUint64(dst, linkID)
	for _, v := range feat {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
	}
	return dst
}

// recordSink is the OnRecord-style tap shape: calling through a stored func
// value from an annotated publish path is exactly what the analyzer must
// keep rejecting — the tap belongs on the writer goroutine, not the
// producer.
type recordSink struct{ tap func([]byte) }

//lint:noalloc seeded violation: producer-side tap through a func value
func (r *auditRing) badTap(s *recordSink, rec []byte) {
	s.tap(rec) // want `//lint:noalloc function \(\*auditRing\)\.badTap calls through a func value`
}
