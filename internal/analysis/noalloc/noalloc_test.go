package noalloc_test

import (
	"testing"

	"github.com/libra-wlan/libra/internal/analysis/analysistest"
	"github.com/libra-wlan/libra/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), noalloc.Analyzer, "noallocfix")
}
