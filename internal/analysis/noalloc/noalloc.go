// Package noalloc enforces the //lint:noalloc hot-path contract: a function
// annotated //lint:noalloc must be allocation-free in steady state. The
// fleet-scale throughput numbers rest on the decide and measure paths never
// touching the allocator once warm; this analyzer turns that benchmark
// observation into a merge gate.
//
// Inside an annotated function the analyzer flags every allocation construct
// — make/new, slice and map composite literals, &composite escapes, growing
// append, interface boxing at call boundaries, closure captures, string
// concatenation and string↔[]byte conversions, map writes, go statements —
// and every call to a callee it cannot prove allocation-free: callees must
// themselves be annotated, be proven free by the interprocedural fact
// engine, or sit on the short external allowlist (math, sync/atomic, lock
// methods, plumbed-RNG draws, fixed-width encoding/binary helpers,
// sync.Pool). Calls through func values are always flagged; calls through
// interfaces are resolved to every in-program implementation and each must
// hold the contract.
//
// Two escapes keep the contract honest rather than unusable: sites and
// calls lexically inside a warm-up guard (an if whose condition re-checks a
// reusable buffer via cap/len or nil) are amortized cold-path work and pass,
// and a //lint:ignore noalloc <reason> line comment documents a reviewed
// exception in place.
package noalloc

import (
	"go/ast"
	"go/types"

	"github.com/libra-wlan/libra/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "forbids allocation sites (make/new, composite-literal escapes, " +
		"growing append, interface boxing, closure captures, string↔[]byte " +
		"conversions, map writes) in //lint:noalloc-annotated functions, and " +
		"calls from them to callees not provably allocation-free; warm-up " +
		"guards (cap/len or nil re-checks of reusable buffers) mark the " +
		"sanctioned amortized cold path",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Prog == nil {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			node := pass.Prog.FuncAt(obj)
			if node == nil || node.Noalloc == nil {
				continue
			}
			check(pass, node)
		}
	}
	return nil, nil
}

func check(pass *analysis.Pass, fn *analysis.FuncNode) {
	for _, site := range pass.Prog.AllocSites(fn) {
		if site.Amortized {
			continue
		}
		pass.Reportf(site.Pos,
			"allocation in //lint:noalloc function %s: %s", fn.Name(), site.What)
	}
	for _, c := range fn.Calls {
		if c.Amortized {
			continue
		}
		if why := pass.Prog.CallAllocWhy(c); why != "" {
			pass.Reportf(c.Pos,
				"//lint:noalloc function %s %s; annotate the callee //lint:noalloc, prove it allocation-free, or move the call behind a warm-up guard", fn.Name(), why)
		}
	}
}
