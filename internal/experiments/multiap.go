package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/libra-wlan/libra/internal/sim"
	"github.com/libra-wlan/libra/internal/sim/engine"
)

// MultiAP runs the discrete-event engine over a small multi-AP deployment
// and compares adaptation policies side by side: aggregate delivered bytes,
// link breaks, AP handoffs, and mean per-station recovery delay. It extends
// the single-link trace-driven evaluation to the contention + interference +
// mobility-of-association regime the paper's §8 points at, using the same
// MAC/PHY models as every other experiment.
func MultiAP(s *Suite) (*Table, error) {
	clf, err := s.Classifier()
	if err != nil {
		return nil, err
	}

	policies := []struct {
		name   string
		policy sim.Policy
	}{
		{"BA First", sim.BAFirst},
		{"RA First", sim.RAFirst},
		{"LiBRA", sim.LiBRA},
	}

	t := &Table{
		Title: "Multi-AP engine: 3 APs, 24 stations, 400ms (per policy)",
		Header: []string{"Policy", "Agg Gbps", "Breaks", "Handoffs",
			"Mean recovery"},
	}

	for _, p := range policies {
		spec := engine.Spec{
			APs: 3, Stations: 24,
			Duration: 400 * time.Millisecond,
			Seed:     uint64(s.Seed) + 57,
			// The large-α regime (§8): beam sweeps are expensive, so the
			// BA-vs-RA choice actually moves delivered bytes.
			Params: sim.Params{
				BAOverhead: 50 * time.Millisecond,
				FAT:        2 * time.Millisecond,
			},
			Policy:     p.policy,
			Classifier: clf,
		}
		sc, err := engine.Build(spec)
		if err != nil {
			return nil, fmt.Errorf("multiap %s: %w", p.name, err)
		}
		res, err := engine.New(sc, 0).Run(context.Background())
		if err != nil {
			return nil, fmt.Errorf("multiap %s: %w", p.name, err)
		}

		var rec time.Duration
		outs := res.Outcomes()
		for _, o := range outs {
			rec += o.RecoveryDelay
		}
		mean := time.Duration(0)
		if len(outs) > 0 {
			mean = rec / time.Duration(len(outs))
		}
		gbps := res.Bytes() * 8 / spec.Duration.Seconds() / 1e9
		t.Rows = append(t.Rows, []string{
			p.name,
			fmt.Sprintf("%.3f", gbps),
			fmt.Sprintf("%d", res.Breaks()),
			fmt.Sprintf("%d", res.Handoffs),
			fmt.Sprintf("%.1fms", float64(mean)/float64(time.Millisecond)),
		})
	}
	return t, nil
}
