package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/ml"
	"github.com/libra-wlan/libra/internal/sim"
	"github.com/libra-wlan/libra/internal/trace"
)

// ShapeCheck is one qualitative claim of the paper, encoded as an
// executable assertion against the reproduction. The claims deliberately
// test *shapes* (orderings, signs, thresholds-exist) rather than absolute
// numbers, which a simulator cannot and should not match.
type ShapeCheck struct {
	// ID is a short stable identifier ("fig3-ba-helps").
	ID string
	// Claim quotes or paraphrases the paper.
	Claim string
	// Run evaluates the claim. detail explains the measured values.
	Run func(s *Suite) (pass bool, detail string, err error)
}

// ShapeChecks returns the full claim suite, in paper order.
func ShapeChecks() []ShapeCheck {
	return []ShapeCheck{
		{
			ID:    "table1-campaign-counts",
			Claim: "Table 1: 479/81/108 cases over 94/12/12 positions (118 total)",
			Run: func(s *Suite) (bool, string, error) {
				m := s.Main()
				d, b, i := len(m.Filter(dataset.Displacement)), len(m.Filter(dataset.Blockage)), len(m.Filter(dataset.Interference))
				pos := m.SiteCount(-1, "")
				ok := d == 479 && b == 81 && i == 108 && pos == 118
				return ok, fmt.Sprintf("cases %d/%d/%d positions %d", d, b, i, pos), nil
			},
		},
		{
			ID:    "table1-label-shape",
			Claim: "BA dominates displacement and blockage; RA is the majority under interference (§5.2)",
			Run: func(s *Suite) (bool, string, error) {
				m := s.Main()
				db, dr, _ := m.CountLabels(dataset.Displacement)
				bb, br, _ := m.CountLabels(dataset.Blockage)
				ib, ir, _ := m.CountLabels(dataset.Interference)
				ok := db > 2*dr && bb > 2*br && ir > ib
				return ok, fmt.Sprintf("disp %d:%d block %d:%d intf %d:%d", db, dr, bb, br, ib, ir), nil
			},
		},
		{
			ID:    "fig1-static-ba-hurts",
			Claim: "Fig 1c: disabling BA improves static throughput (~26% in the paper)",
			Run: func(s *Suite) (bool, string, error) {
				r := Figure1(s)
				gain := (r.Locked/r.WithBA - 1) * 100
				return gain > 5, fmt.Sprintf("locked beats BA by %+.1f%%", gain), nil
			},
		},
		{
			ID:    "fig1-phone-flappier",
			Claim: "Fig 1a/b: the phone triggers BA far more than the AP chipset (>100 times in 60 s)",
			Run: func(s *Suite) (bool, string, error) {
				r := Figure1(s)
				ok := r.Phone.BATriggers > 100 && r.Phone.BATriggers > r.AP.BATriggers
				return ok, fmt.Sprintf("phone %d vs ap %d triggers", r.Phone.BATriggers, r.AP.BATriggers), nil
			},
		},
		{
			ID:    "fig2-blockage-ba-hurts",
			Claim: "Fig 2c: BA costs throughput under static blockage (~16% in the paper)",
			Run: func(s *Suite) (bool, string, error) {
				r := Figure2(s)
				gain := (r.Locked/r.WithBA - 1) * 100
				return gain > 3, fmt.Sprintf("locked beats BA by %+.1f%%", gain), nil
			},
		},
		{
			ID:    "fig3-mobility-ba-helps",
			Claim: "Fig 3c: under mobility BA beats the best static sector (~15% in the paper)",
			Run: func(s *Suite) (bool, string, error) {
				r := Figure3(s)
				gain := (r.WithBA/r.Locked - 1) * 100
				return gain > 5, fmt.Sprintf("BA beats locked by %+.1f%%", gain), nil
			},
		},
		{
			ID:    "fig4-snr-separates-displacement",
			Claim: "Fig 4a: BA-preferred displacement cases show larger SNR drops than RA-preferred ones",
			Run: func(s *Suite) (bool, string, error) {
				ba, ra := classSamples(s, dataset.Displacement, 0)
				mb, mr := dsp.Median(ba), dsp.Median(ra)
				return mb > mr, fmt.Sprintf("BA median %.1f dB vs RA %.1f dB", mb, mr), nil
			},
		},
		{
			ID:    "fig5-negative-tof-means-ra",
			Claim: "Fig 5a: negative ToF difference (backward motion) predominates in RA cases",
			Run: func(s *Suite) (bool, string, error) {
				_, ra := classSamples(s, dataset.Displacement, 1)
				neg := 0
				for _, v := range ra {
					if v < 0 {
						neg++
					}
				}
				frac := float64(neg) / float64(len(ra))
				return frac > 0.5, fmt.Sprintf("%.0f%% of RA cases negative", frac*100), nil
			},
		},
		{
			ID:    "fig6-pdp-compressed",
			Claim: "Fig 6: PDP similarity is compressed toward 1 by 60 GHz channel sparsity",
			Run: func(s *Suite) (bool, string, error) {
				ba, ra := classSamples(s, -1, 3)
				all := append(append([]float64{}, ba...), ra...)
				med := dsp.Median(all)
				return med > 0.8, fmt.Sprintf("median similarity %.2f", med), nil
			},
		},
		{
			ID:    "fig9-ra-needs-high-mcs",
			Claim: "Fig 9: RA-preferred cases almost always start from a high MCS (5-6 in the paper)",
			Run: func(s *Suite) (bool, string, error) {
				_, ra := classSamples(s, -1, 6)
				med := dsp.Median(ra)
				return med >= 4, fmt.Sprintf("RA median initial MCS %.0f", med), nil
			},
		},
		{
			ID:    "ml-rf-strong",
			Claim: "§6.2: a random forest over the 7 metrics predicts the right mechanism with high accuracy",
			Run: func(s *Suite) (bool, string, error) {
				rng := rand.New(rand.NewSource(s.Seed + 81))
				rf := func() ml.Classifier { return &ml.RandomForest{NumTrees: 60, MaxDepth: 10, Seed: s.Seed} }
				cv, err := ml.CrossValidate(rf, s.Main().ToML(false), 5, rng)
				if err != nil {
					return false, "", err
				}
				return cv.Accuracy > 0.85, fmt.Sprintf("RF 5-fold accuracy %.1f%%", cv.Accuracy*100), nil
			},
		},
		{
			ID:    "ml-transfer-satisfactory",
			Claim: "§6.2: accuracy drops across buildings but remains satisfactory (85-88% in the paper)",
			Run: func(s *Suite) (bool, string, error) {
				rf := &ml.RandomForest{NumTrees: 60, MaxDepth: 10, Seed: s.Seed}
				if err := rf.Fit(s.Main().ToML(false)); err != nil {
					return false, "", err
				}
				test := s.Test().ToML(false)
				acc := ml.Accuracy(test.Y, ml.PredictAll(rf, test))
				return acc > 0.8, fmt.Sprintf("transfer accuracy %.1f%%", acc*100), nil
			},
		},
		{
			ID:    "threeclass-high",
			Claim: "§7: the 3-class (BA/RA/NA) RF stays accurate enough to drive LiBRA (98/94% in the paper)",
			Run: func(s *Suite) (bool, string, error) {
				rf := &ml.RandomForest{NumTrees: 80, MaxDepth: 12, Seed: s.Seed}
				if err := rf.Fit(s.Main().ToML(true)); err != nil {
					return false, "", err
				}
				test := s.Test().ToML(true)
				acc := ml.Accuracy(test.Y, ml.PredictAll(rf, test))
				return acc > 0.88, fmt.Sprintf("3-class transfer accuracy %.1f%%", acc*100), nil
			},
		},
		{
			ID:    "fig10-libra-beats-heuristics",
			Claim: "Fig 10: over the BA-overhead grid, LiBRA loses fewer bytes to Oracle-Data than either heuristic",
			Run: func(s *Suite) (bool, string, error) {
				clf, err := s.Classifier()
				if err != nil {
					return false, "", err
				}
				// Aggregate mean loss across the four BA overheads (the
				// paper's point is that each heuristic has a regime where
				// it collapses while LiBRA never does).
				sums := map[sim.Policy]float64{}
				for _, ba := range sim.BAOverheads {
					p := sim.Params{BAOverhead: ba, FAT: 2 * time.Millisecond, FlowDur: time.Second}
					diffs := forEachEntry(s.TestEntries(), func(e *dataset.Entry) map[sim.Policy]float64 {
						oracle := sim.RunEntry(e, p, sim.OracleData, nil)
						out := map[sim.Policy]float64{}
						for _, pol := range sim.Policies {
							out[pol] = (oracle.Bytes - sim.RunEntry(e, p, pol, clf).Bytes) / 1e6
						}
						return out
					})
					for pol, v := range diffs {
						sums[pol] += dsp.Mean(v)
					}
				}
				ok := sums[sim.LiBRA] <= sums[sim.BAFirst] && sums[sim.LiBRA] <= sums[sim.RAFirst]
				return ok, fmt.Sprintf("grid-mean lost MB: LiBRA %.2f, BA First %.2f, RA First %.2f",
					sums[sim.LiBRA]/4, sums[sim.BAFirst]/4, sums[sim.RAFirst]/4), nil
			},
		},
		{
			ID:    "fig11-delay-crossover",
			Claim: "Fig 11: recovery delay is worst for RA First at low BA overhead and worst for BA First at high",
			Run: func(s *Suite) (bool, string, error) {
				clf, err := s.Classifier()
				if err != nil {
					return false, "", err
				}
				q90 := func(ba time.Duration) map[sim.Policy]float64 {
					p := sim.Params{BAOverhead: ba, FAT: 2 * time.Millisecond, FlowDur: time.Second}
					diffs := forEachEntry(s.TestEntries(), func(e *dataset.Entry) map[sim.Policy]float64 {
						oracle := sim.RunEntry(e, p, sim.OracleDelay, nil)
						out := map[sim.Policy]float64{}
						for _, pol := range sim.Policies {
							out[pol] = float64(sim.RunEntry(e, p, pol, clf).RecoveryDelay-oracle.RecoveryDelay) / float64(time.Millisecond)
						}
						return out
					})
					q := map[sim.Policy]float64{}
					for pol, v := range diffs {
						q[pol] = dsp.Quantile(v, 0.9)
					}
					return q
				}
				low := q90(500 * time.Microsecond)
				high := q90(250 * time.Millisecond)
				ok := low[sim.RAFirst] > low[sim.BAFirst] && high[sim.BAFirst] > high[sim.RAFirst]
				return ok, fmt.Sprintf("p90 ms low: RA %.1f BA %.1f | high: RA %.1f BA %.1f",
					low[sim.RAFirst], low[sim.BAFirst], high[sim.RAFirst], high[sim.BAFirst]), nil
			},
		},
		{
			ID:    "fig12-ra-first-worst-motion",
			Claim: "Fig 12: RA First delivers the smallest fraction of Oracle-Data bytes under motion",
			Run: func(s *Suite) (bool, string, error) {
				clf, err := s.Classifier()
				if err != nil {
					return false, "", err
				}
				pools := s.Pools()
				rng := rand.New(rand.NewSource(s.Seed + 82))
				p := sim.Params{BAOverhead: 500 * time.Microsecond, FAT: 2 * time.Millisecond}
				sums := map[sim.Policy]float64{}
				tls := pools.RandomTimelines(trace.Motion, 15, rng)
				for _, tl := range tls {
					oracle := sim.RunTimeline(tl, p, sim.OracleData, nil)
					for _, pol := range sim.Policies {
						sums[pol] += sim.RunTimeline(tl, p, pol, clf).Bytes / oracle.Bytes
					}
				}
				ok := sums[sim.RAFirst] < sums[sim.BAFirst] && sums[sim.RAFirst] < sums[sim.LiBRA]
				return ok, fmt.Sprintf("mean ratios: BA %.2f RA %.2f LiBRA %.2f",
					sums[sim.BAFirst]/15, sums[sim.RAFirst]/15, sums[sim.LiBRA]/15), nil
			},
		},
		{
			ID:    "fig13-libra-balances-delay",
			Claim: "Fig 13: at 250 ms BA overhead, LiBRA's delay sits between RA First (best) and BA First (worst)",
			Run: func(s *Suite) (bool, string, error) {
				clf, err := s.Classifier()
				if err != nil {
					return false, "", err
				}
				pools := s.Pools()
				rng := rand.New(rand.NewSource(s.Seed + 83))
				p := sim.Params{BAOverhead: 250 * time.Millisecond, FAT: 2 * time.Millisecond}
				sums := map[sim.Policy]time.Duration{}
				tls := pools.RandomTimelines(trace.Mixed, 15, rng)
				for _, tl := range tls {
					for _, pol := range sim.Policies {
						res := sim.RunTimeline(tl, p, pol, clf)
						sums[pol] += res.MeanRecoveryDelay()
					}
				}
				ok := sums[sim.RAFirst] <= sums[sim.LiBRA] && sums[sim.LiBRA] <= sums[sim.BAFirst]
				return ok, fmt.Sprintf("mean delays: RA %v LiBRA %v BA %v",
					sums[sim.RAFirst]/15, sums[sim.LiBRA]/15, sums[sim.BAFirst]/15), nil
			},
		},
		{
			ID:    "table4-ra-first-stalls-most",
			Claim: "Table 4: RA First stalls VR playback far more often than BA First at low BA overhead",
			Run: func(s *Suite) (bool, string, error) {
				tb, err := Table4(s, 6)
				if err != nil {
					return false, "", err
				}
				// Row 0 is the 0.5 ms / 2 ms cell; columns: label, BA, RA, LiBRA, ...
				var baD, baN, raD, raN float64
				if _, err := fmt.Sscanf(tb.Rows[0][1], "%f/%f", &baD, &baN); err != nil {
					return false, "", err
				}
				if _, err := fmt.Sscanf(tb.Rows[0][2], "%f/%f", &raD, &raN); err != nil {
					return false, "", err
				}
				return raN > baN, fmt.Sprintf("stalls: RA First %.1f vs BA First %.1f", raN, baN), nil
			},
		},
		{
			ID:    "failover-tradeoff",
			Claim: "§8: a failover sector survives blockage but not angular displacement (the MOCA critique)",
			Run: func(s *Suite) (bool, string, error) {
				tb, err := FailoverComparison(s, 8)
				if err != nil {
					return false, "", err
				}
				var blockFo, blockBA, rotFo, rotBA float64
				if _, err := fmt.Sscanf(tb.Rows[0][1], "%fms", &blockFo); err != nil {
					return false, "", err
				}
				if _, err := fmt.Sscanf(tb.Rows[0][2], "%fms", &blockBA); err != nil {
					return false, "", err
				}
				if _, err := fmt.Sscanf(tb.Rows[1][1], "%fms", &rotFo); err != nil {
					return false, "", err
				}
				if _, err := fmt.Sscanf(tb.Rows[1][2], "%fms", &rotBA); err != nil {
					return false, "", err
				}
				ok := blockFo < blockBA && rotFo > rotBA*0.9
				return ok, fmt.Sprintf("blockage fo %.0f vs BA %.0f ms; rotation fo %.0f vs BA %.0f ms",
					blockFo, blockBA, rotFo, rotBA), nil
			},
		},
		{
			ID:    "futurework-blockage-predictable",
			Claim: "§7 future work: recurring blockage patterns are learnable over longer horizons",
			Run: func(s *Suite) (bool, string, error) {
				tb, err := FutureWork(s, 10)
				if err != nil {
					return false, "", err
				}
				for _, row := range tb.Rows {
					if row[0] != "Blockage" {
						continue
					}
					var acc float64
					if _, err := fmt.Sscanf(row[3], "%f%%", &acc); err != nil {
						return false, fmt.Sprintf("cell %q", row[3]), nil
					}
					return acc > 60, fmt.Sprintf("blockage pattern accuracy %.0f%%", acc), nil
				}
				return false, "no blockage row", nil
			},
		},
	}
}

// classSamples extracts the per-class values of one feature from the main
// campaign (im < 0 selects all impairments).
func classSamples(s *Suite, im dataset.Impairment, feature int) (ba, ra []float64) {
	for _, e := range s.Main().Entries {
		if e.Impairment == dataset.NoImpairment {
			continue
		}
		if im >= 0 && e.Impairment != im {
			continue
		}
		if e.Label == dataset.ActBA {
			ba = append(ba, e.Features[feature])
		} else {
			ra = append(ra, e.Features[feature])
		}
	}
	return ba, ra
}

// RunShapeChecks executes every check and returns a result table plus the
// number of failures.
func RunShapeChecks(s *Suite) (*Table, int, error) {
	t := &Table{
		Title:  "Reproduction shape checks (paper claims as executable assertions)",
		Header: []string{"Check", "Result", "Measured", "Claim"},
	}
	failures := 0
	for _, c := range ShapeChecks() {
		pass, detail, err := c.Run(s)
		if err != nil {
			return nil, 0, fmt.Errorf("experiments: shape check %s: %w", c.ID, err)
		}
		res := "PASS"
		if !pass {
			res = "FAIL"
			failures++
		}
		t.Rows = append(t.Rows, []string{c.ID, res, detail, c.Claim})
	}
	return t, failures, nil
}
