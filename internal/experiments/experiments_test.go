package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/libra-wlan/libra/internal/cots"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/sim"
)

// A shared suite keeps campaign generation and training out of every test.
var (
	suiteOnce sync.Once
	suite     *Suite
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() { suite = NewSuite(42) })
	return suite
}

func TestSuiteCaching(t *testing.T) {
	s := testSuite(t)
	if s.Main() != s.Main() {
		t.Error("Main not cached")
	}
	if s.Test() != s.Test() {
		t.Error("Test not cached")
	}
	c1, err := s.Classifier()
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := s.Classifier()
	if c1 != c2 {
		t.Error("Classifier not cached")
	}
	if s.Pools() != s.Pools() {
		t.Error("Pools not cached")
	}
}

func TestTestEntriesExcludeNA(t *testing.T) {
	s := testSuite(t)
	entries := s.TestEntries()
	if len(entries) != 228 {
		t.Errorf("test entries = %d, want 228", len(entries))
	}
	for _, e := range entries {
		if e.Impairment == dataset.NoImpairment {
			t.Fatal("NA entry leaked into the evaluation set")
		}
	}
}

func TestTable1Shape(t *testing.T) {
	s := testSuite(t)
	tb := Table1(s)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Row 0 is displacement with 479 cases; last row overall with 668.
	if tb.Rows[0][1] != "479" || tb.Rows[3][1] != "668" {
		t.Errorf("case counts: %v / %v", tb.Rows[0][1], tb.Rows[3][1])
	}
	out := tb.String()
	if !strings.Contains(out, "Displacement") || !strings.Contains(out, "Corridors") {
		t.Error("rendered table missing rows/columns")
	}
}

func TestTable2Shape(t *testing.T) {
	s := testSuite(t)
	tb := Table2(s)
	if tb.Rows[3][1] != "228" {
		t.Errorf("overall cases = %v", tb.Rows[3][1])
	}
	if !strings.Contains(tb.String(), "Building 1") {
		t.Error("missing building column")
	}
}

func TestTable3Importances(t *testing.T) {
	s := testSuite(t)
	tb, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Header) != dataset.NumFeatures || len(tb.Rows[0]) != dataset.NumFeatures {
		t.Fatal("importance table shape")
	}
	var sum float64
	for _, cell := range tb.Rows[0] {
		var v float64
		if _, err := fmt.Sscan(cell, &v); err != nil {
			t.Fatalf("cell %q", cell)
		}
		sum += v
	}
	if sum < 0.98 || sum > 1.02 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestMetricFigures(t *testing.T) {
	s := testSuite(t)
	figs := []*Figure{Figure4(s), Figure5(s), Figure6(s), Figure7(s), Figure8(s), Figure9(s)}
	for _, f := range figs {
		if len(f.Panels) != 4 {
			t.Fatalf("%s: %d panels", f.Title, len(f.Panels))
		}
		for _, p := range f.Panels {
			if len(p.Series) != 2 {
				t.Fatalf("%s/%s: %d series", f.Title, p.Title, len(p.Series))
			}
		}
		if f.String() == "" {
			t.Error("empty rendering")
		}
	}
}

func TestFigure4DisplacementCounts(t *testing.T) {
	s := testSuite(t)
	f := Figure4(s)
	// Panel labels carry the class sizes, e.g. "BA (410)".
	lbl := f.Panels[0].Series[0].Label
	if !strings.HasPrefix(lbl, "BA (") {
		t.Errorf("series label %q", lbl)
	}
	ba, ra, _ := s.Main().CountLabels(dataset.Displacement)
	wantBA := "BA ("
	if !strings.Contains(lbl, wantBA) {
		t.Error("label format")
	}
	_ = ba
	_ = ra
}

func TestFigure4SeparationShape(t *testing.T) {
	// The paper's displacement observation: BA cases have larger SNR drops
	// than RA cases (medians separated).
	s := testSuite(t)
	f := Figure4(s)
	disp := f.Panels[0]
	baMed := median(disp.Series[0].X)
	raMed := median(disp.Series[1].X)
	if baMed <= raMed {
		t.Errorf("BA median SNR drop %v <= RA median %v", baMed, raMed)
	}
}

func median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	cp := append([]float64(nil), x...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

func TestCrossValidationTable(t *testing.T) {
	s := testSuite(t)
	tb, err := CrossValidation(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if !strings.HasSuffix(row[1], "%") {
			t.Errorf("accuracy cell %q", row[1])
		}
	}
}

func TestTransferAccuracyTable(t *testing.T) {
	s := testSuite(t)
	tb, err := TransferAccuracy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestThreeClassTable(t *testing.T) {
	s := testSuite(t)
	tb, err := ThreeClass(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFigure10Shape(t *testing.T) {
	s := testSuite(t)
	f, err := Figure10(s)
	if err != nil {
		t.Fatal(err)
	}
	// 2 FATs x 4 BA overheads = 8 panels (paper shows a-h).
	if len(f.Panels) != 8 {
		t.Fatalf("panels = %d", len(f.Panels))
	}
	// 3 policies x 2 flow durations per panel.
	if len(f.Panels[0].Series) != 6 {
		t.Fatalf("series = %d", len(f.Panels[0].Series))
	}
	for _, p := range f.Panels {
		for _, srs := range p.Series {
			for _, v := range srs.X {
				if v < 0 {
					t.Fatal("negative byte difference")
				}
			}
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	s := testSuite(t)
	f, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Panels) != 8 {
		t.Fatalf("panels = %d", len(f.Panels))
	}
	if len(f.Panels[0].Series) != 3 {
		t.Fatalf("series = %d", len(f.Panels[0].Series))
	}
}

func TestFigure12And13Shape(t *testing.T) {
	s := testSuite(t)
	f12, err := Figure12(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Panels) != 4 {
		t.Fatalf("fig12 panels = %d", len(f12.Panels))
	}
	// 3 policies x 5 scenario groups per panel.
	if len(f12.Panels[0].Groups) != 15 {
		t.Fatalf("fig12 groups = %d", len(f12.Panels[0].Groups))
	}
	for _, p := range f12.Panels {
		for _, g := range p.Groups {
			if g.Stats.Median < 0 || g.Stats.Median > 1.25 {
				t.Errorf("%s/%s: byte ratio median %v", p.Title, g.Label, g.Stats.Median)
			}
		}
	}
	f13, err := Figure13(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(f13.Panels) != 4 || len(f13.Panels[0].Groups) != 15 {
		t.Fatal("fig13 shape")
	}
	if f13.String() == "" || f12.String() == "" {
		t.Error("empty rendering")
	}
}

func TestTable4Shape(t *testing.T) {
	s := testSuite(t)
	tb, err := Table4(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Columns: label + 5 policies.
	if len(tb.Header) != 6 {
		t.Fatalf("header = %v", tb.Header)
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "/") {
				t.Errorf("cell %q not duration/stalls", cell)
			}
		}
	}
}

func TestMotivationFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("COTS motivation runs take seconds")
	}
	s := testSuite(t)
	for _, res := range []*MotivationResult{Figure1(s), Figure2(s), Figure3(s)} {
		if res.Phone.BATriggers == 0 {
			t.Errorf("%s: phone never swept", res.Title)
		}
		if res.WithBA <= 0 || res.Locked <= 0 {
			t.Errorf("%s: zero throughput", res.Title)
		}
		if res.String() == "" {
			t.Error("empty rendering")
		}
	}
}

func TestModelFactoriesComplete(t *testing.T) {
	fs := ModelFactories(1)
	for _, name := range modelOrder {
		f, ok := fs[name]
		if !ok {
			t.Fatalf("missing model %s", name)
		}
		if f() == nil {
			t.Fatalf("%s factory returned nil", name)
		}
	}
}

func TestGridCellLabel(t *testing.T) {
	if got := gridCell(sim.BAOverheads[0], sim.FATs[0]); !strings.Contains(got, "500µs") {
		t.Errorf("label = %q", got)
	}
}

func TestFutureWorkTable(t *testing.T) {
	s := testSuite(t)
	tb, err := FutureWork(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Blockage timelines alternate impair/recover and must be far more
	// predictable than chance.
	var blockAcc string
	for _, row := range tb.Rows {
		if row[0] == "Blockage" {
			blockAcc = row[3]
		}
	}
	var v float64
	if _, err := fmt.Sscanf(blockAcc, "%f%%", &v); err != nil {
		t.Fatalf("accuracy cell %q", blockAcc)
	}
	if v < 60 {
		t.Errorf("blockage pattern accuracy = %v%%, expected high predictability", v)
	}
}

func TestCSVExports(t *testing.T) {
	s := testSuite(t)
	tb := Table1(s)
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "Scenario,Total,BA,RA") {
		t.Errorf("table CSV header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if !strings.Contains(csv, "Displacement,479") {
		t.Error("table CSV missing data")
	}
	fig := Figure4(s)
	fcsv := fig.CSV()
	if !strings.HasPrefix(fcsv, "panel,series,x,y\n") {
		t.Error("figure CSV header")
	}
	lines := strings.Count(fcsv, "\n")
	if lines < 100 {
		t.Errorf("figure CSV has only %d lines", lines)
	}
	box, err := Figure12(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	bcsv := box.CSV()
	if !strings.HasPrefix(bcsv, "panel,group,min,q1,median,q3,max,mean,n\n") {
		t.Error("box CSV header")
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{Header: []string{`a,b`, `c"d`}, Rows: [][]string{{"x\ny", "z"}}}
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b"`) || !strings.Contains(csv, `"c""d"`) || !strings.Contains(csv, "\"x\ny\"") {
		t.Errorf("escaping broken: %q", csv)
	}
}

func TestShapeChecksAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks take seconds")
	}
	s := testSuite(t)
	table, failures, err := RunShapeChecks(s)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Errorf("%d shape checks failed:\n%s", failures, table)
	}
	if len(table.Rows) < 15 {
		t.Errorf("only %d checks ran", len(table.Rows))
	}
}

func TestFailoverComparisonShape(t *testing.T) {
	s := testSuite(t)
	tb, err := FailoverComparison(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	parse := func(cell string) float64 {
		var v float64
		if _, err := fmt.Sscanf(cell, "%fms", &v); err != nil {
			t.Fatalf("cell %q", cell)
		}
		return v
	}
	// Blockage row: the failover recovers much faster than a full sweep.
	if fo, ba := parse(tb.Rows[0][1]), parse(tb.Rows[0][2]); fo >= ba/2 {
		t.Errorf("blockage: failover %vms not far below BA First %vms", fo, ba)
	}
	// Rotation row: the stale failover loses its advantage (the paper's
	// §8 critique of MOCA's approach).
	if fo, ba := parse(tb.Rows[1][1]), parse(tb.Rows[1][2]); fo <= ba {
		t.Errorf("rotation: failover %vms unexpectedly beats BA First %vms", fo, ba)
	}
}

func TestAlphaSweepCrossover(t *testing.T) {
	s := testSuite(t)
	tb, err := AlphaSweep(s, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) float64 {
		var v float64
		if _, err := fmt.Sscan(cell, &v); err != nil {
			t.Fatalf("cell %q", cell)
		}
		return v
	}
	first := tb.Rows[0]             // alpha = 0: delay only
	last := tb.Rows[len(tb.Rows)-1] // alpha = 1: throughput only
	if parse(first[2]) <= parse(first[1]) {
		t.Error("at alpha=0 RA First should beat BA First (delay dominates)")
	}
	if parse(last[1]) <= parse(last[2]) {
		t.Error("at alpha=1 BA First should beat RA First (throughput dominates)")
	}
	// LiBRA is never the worst policy at any alpha.
	for _, row := range tb.Rows {
		ba, ra, li := parse(row[1]), parse(row[2]), parse(row[3])
		if li < ba && li < ra {
			t.Errorf("alpha %s: LiBRA %.3f is the worst policy (BA %.3f, RA %.3f)", row[0], li, ba, ra)
		}
	}
}

func TestConfusionReport(t *testing.T) {
	s := testSuite(t)
	tb, err := ConfusionReport(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Diagonal dominance: each class is mostly predicted as itself.
	for i, row := range tb.Rows {
		var diag, total int
		for j := 1; j <= 3; j++ {
			var v int
			if _, err := fmt.Sscan(row[j], &v); err != nil {
				t.Fatalf("cell %q", row[j])
			}
			total += v
			if j-1 == i {
				diag = v
			}
		}
		if total > 0 && diag*2 < total {
			t.Errorf("class %s not diagonally dominant: %d of %d", row[0], diag, total)
		}
	}
}

func TestSectorSparkline(t *testing.T) {
	tl := []cots.SectorSample{
		{Sector: 0}, {Sector: 9}, {Sector: 10}, {Sector: 24}, {Sector: cots.NoSector},
	}
	got := sectorSparkline(tl, 5)
	if got != "09ao*" {
		t.Errorf("sparkline = %q", got)
	}
	if sectorSparkline(nil, 10) != "(empty)" {
		t.Error("empty timeline")
	}
	// Downsampling keeps the requested width.
	long := make([]cots.SectorSample, 500)
	if w := len(sectorSparkline(long, 72)); w != 72 {
		t.Errorf("width = %d", w)
	}
}

// TestSuiteRun covers the orchestrator: named subsets run in canonical
// order, unknown step names fail loudly, Emit streams artifacts, and a
// canceled context stops before the next step.
func TestSuiteRun(t *testing.T) {
	s := testSuite(t)
	var emitted []string
	res, err := s.Run(RunOptions{
		Only: []string{"table2", "fig1"},
		Emit: func(key string, r Result) error {
			emitted = append(emitted, key)
			if r.String() == "" {
				t.Errorf("step %s produced empty output", key)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Key != "fig1" || res[1].Key != "table2" {
		t.Fatalf("results = %+v, want canonical order fig1, table2", res)
	}
	if len(emitted) != 2 {
		t.Fatalf("emit saw %v", emitted)
	}

	if _, err := s.Run(RunOptions{Only: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown step name accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done, err := s.RunContext(ctx, RunOptions{Only: []string{"table2"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(done) != 0 {
		t.Fatalf("canceled run completed %d steps", len(done))
	}
}
