package experiments

import (
	"fmt"
	"math/rand"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/ml"
)

// ModelFactories returns the four model families of §6.2 with the
// parameterizations the paper reports as best per family.
func ModelFactories(seed int64) map[string]func() ml.Classifier {
	return map[string]func() ml.Classifier{
		"DT": func() ml.Classifier {
			return &ml.DecisionTree{MaxDepth: 8, Criterion: ml.Gini}
		},
		"RF": func() ml.Classifier {
			return &ml.RandomForest{NumTrees: 60, MaxDepth: 10, Seed: seed}
		},
		"SVM": func() ml.Classifier {
			return &ml.SVM{Kernel: ml.RBFKernel, C: 4, MaxPasses: 3, Seed: seed}
		},
		"DNN": func() ml.Classifier {
			return &ml.NeuralNet{Epochs: 120, Seed: seed}
		},
	}
}

// modelOrder fixes the display order.
var modelOrder = []string{"DT", "RF", "SVM", "DNN"}

// CrossValidation reproduces the §6.2 5-fold stratified cross-validation of
// the four model families on the main dataset (paper: DT 95/95, RF 98/98,
// SVM 91/91, DNN 95/90 accuracy/F1 %). reps repeats the random split (the
// paper repeats 500 times; a handful of repetitions already stabilizes the
// mean to well under a point).
func CrossValidation(s *Suite, reps int) (*Table, error) {
	if reps <= 0 {
		reps = 3
	}
	train := s.Main().ToML(false)
	rng := rand.New(rand.NewSource(s.Seed + 21))
	t := &Table{
		Title:  fmt.Sprintf("§6.2 five-fold cross-validation on the main dataset (%d repetitions)", reps),
		Header: []string{"Model", "Accuracy", "Weighted F1"},
	}
	factories := ModelFactories(s.Seed + 22)
	for _, name := range modelOrder {
		res, err := ml.RepeatedCV(factories[name], train, 5, reps, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: CV %s: %w", name, err)
		}
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%.1f%%", res.Accuracy*100),
			fmt.Sprintf("%.1f%%", res.WeightedF1*100)})
	}
	return t, nil
}

// TransferAccuracy reproduces the §6.2 transfer study: train on the main
// dataset, test on the two unseen buildings (paper: DT 85/85, RF 88/88,
// SVM 88/88, DNN 83/76).
func TransferAccuracy(s *Suite) (*Table, error) {
	train := s.Main().ToML(false)
	test := s.Test().ToML(false)
	t := &Table{
		Title:  "§6.2 transfer accuracy (train: main dataset, test: Buildings 1 & 2)",
		Header: []string{"Model", "Accuracy", "Weighted F1"},
	}
	factories := ModelFactories(s.Seed + 23)
	for _, name := range modelOrder {
		c := factories[name]()
		if err := c.Fit(train); err != nil {
			return nil, fmt.Errorf("experiments: transfer %s: %w", name, err)
		}
		pred := ml.PredictAll(c, test)
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%.1f%%", ml.Accuracy(test.Y, pred)*100),
			fmt.Sprintf("%.1f%%", ml.WeightedF1(test.Y, pred)*100)})
	}
	return t, nil
}

// ThreeClass reproduces the §7 three-class (BA/RA/NA) random forest study:
// cross-validated accuracy on the NA-augmented main dataset and transfer
// accuracy on the augmented testing dataset (paper: 98% CV, 94% transfer;
// shortening the observation window to 40 ms costs ~3 points).
func ThreeClass(s *Suite) (*Table, error) {
	train := s.Main().ToML(true)
	test := s.Test().ToML(true)
	rng := rand.New(rand.NewSource(s.Seed + 24))
	factory := func() ml.Classifier {
		return &ml.RandomForest{NumTrees: 80, MaxDepth: 12, Seed: s.Seed + 25}
	}
	cv, err := ml.CrossValidate(factory, train, 5, rng)
	if err != nil {
		return nil, err
	}
	c := factory()
	if err := c.Fit(train); err != nil {
		return nil, err
	}
	acc := ml.Accuracy(test.Y, ml.PredictAll(c, test))

	// 40 ms observation window (§7 item 2): two 20 ms windows instead of
	// two 1 s windows. Short windows average fewer frames, so the features
	// carry more measurement noise; the paper measures a ~3-point drop.
	trainShort := shortWindow(s.Main(), s.Seed+26)
	testShort := shortWindow(s.Test(), s.Seed+27)
	cShort := factory()
	if err := cShort.Fit(trainShort.ToML(true)); err != nil {
		return nil, err
	}
	accShort := ml.Accuracy(testShort.ToML(true).Y, ml.PredictAll(cShort, testShort.ToML(true)))

	return &Table{
		Title:  "§7 three-class (BA/RA/NA) random forest",
		Header: []string{"Setting", "Accuracy"},
		Rows: [][]string{
			{"5-fold CV, main dataset (2 s windows)", fmt.Sprintf("%.1f%%", cv.Accuracy*100)},
			{"Transfer to Buildings 1&2 (2 s windows)", fmt.Sprintf("%.1f%%", acc*100)},
			{"Transfer, 40 ms observation windows", fmt.Sprintf("%.1f%%", accShort*100)},
		},
	}, nil
}

// shortWindow re-noises a campaign's features as if observed over 40 ms
// (2 frames) instead of 2 s (200 frames): the per-frame measurement noise
// is averaged over 100x fewer samples.
func shortWindow(c *dataset.Campaign, seed int64) *dataset.Campaign {
	rng := rand.New(rand.NewSource(seed))
	out := &dataset.Campaign{Dataset: dataset.Dataset{Name: c.Name + "-40ms"}, Sites: c.Sites}
	// sqrt(200/2) = 10x more residual averaging noise on SNR/noise/CDR.
	const inflate = 10.0
	for _, e := range c.Entries {
		ne := *e
		ne.Features[0] += rng.NormFloat64() * 0.06 * inflate
		ne.Features[2] += rng.NormFloat64() * 0.12 * inflate
		cdrNoise := rng.NormFloat64() * 0.004 * inflate
		ne.Features[5] += cdrNoise
		if ne.Features[5] < 0 {
			ne.Features[5] = 0
		} else if ne.Features[5] > 1 {
			ne.Features[5] = 1
		}
		out.Entries = append(out.Entries, &ne)
	}
	return out
}

// ConfusionReport details where the production 3-class model errs on the
// transfer set: the full confusion matrix plus per-class F1, the view behind
// the paper's statement that misclassifications are not equally costly (§7).
func ConfusionReport(s *Suite) (*Table, error) {
	clf, err := s.Classifier()
	if err != nil {
		return nil, err
	}
	test := s.Test().ToML(true)
	pred := ml.PredictAll(clf.Model.(*ml.RandomForest), test)
	cm := ml.Confusion(test.Y, pred)
	f1, support := ml.F1PerClass(test.Y, pred)

	classes := []string{"BA", "RA", "NA"}
	t := &Table{
		Title:  "3-class confusion on the transfer set (rows: truth, columns: prediction)",
		Header: []string{"Truth \\ Pred", "BA", "RA", "NA", "Support", "F1"},
	}
	for c := 0; c < len(classes) && c < len(cm); c++ {
		row := []string{classes[c]}
		for p := 0; p < 3; p++ {
			v := 0
			if p < len(cm[c]) {
				v = cm[c][p]
			}
			row = append(row, fmt.Sprint(v))
		}
		row = append(row, fmt.Sprint(support[c]), fmt.Sprintf("%.2f", f1[c]))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
