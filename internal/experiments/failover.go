package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/sim"
)

// FailoverComparison quantifies the §8 discussion of MOCA's failover-sector
// approach: per impairment type, the mean link recovery delay of the
// failover policy against BA First, RA First, and LiBRA. The expected shape
// (from the paper and its MSWiM'20 companion study): a stale failover is an
// excellent backup under blockage — the reflection it points at survives —
// but collapses under angular displacement, where both the primary and the
// failover are misaligned and the device ends up paying the failover
// attempt plus the full sweep.
func FailoverComparison(s *Suite, scenariosPerKind int) (*Table, error) {
	if scenariosPerKind <= 0 {
		scenariosPerKind = 12
	}
	clf, err := s.Classifier()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 91))
	p := sim.Params{BAOverhead: 150 * time.Millisecond, FAT: 2 * time.Millisecond, FlowDur: time.Second}

	t := &Table{
		Title:  "Failover-sector comparison (MOCA-style backup vs sweeping policies; mean recovery delay)",
		Header: []string{"Impairment", "Failover", "BA First", "RA First", "LiBRA"},
	}

	kinds := []struct {
		name   string
		impair func(l *channel.Link, rng *rand.Rand)
	}{
		{"Blockage", func(l *channel.Link, rng *rand.Rand) {
			frac := 0.3 + 0.4*rng.Float64()
			at := l.Tx.Pos.Add(l.Rx.Pos.Sub(l.Tx.Pos).Scale(frac))
			l.SetBlockers([]channel.Blocker{channel.DefaultBlocker(at)})
		}},
		{"Rotation", func(l *channel.Link, rng *rand.Rand) {
			sign := 1.0
			if rng.Intn(2) == 0 {
				sign = -1
			}
			l.RotateRx(l.Rx.OrientDeg + sign*(45+40*rng.Float64()))
		}},
	}

	for _, kind := range kinds {
		var foSum, baSum, raSum, liSum time.Duration
		n := 0
		for i := 0; i < scenariosPerKind; i++ {
			entry, fo, ok := failoverScenario(s.Seed+int64(100+i), rng, kind.impair)
			if !ok {
				continue
			}
			n++
			foSum += sim.RunEntryFailover(entry, fo, p).RecoveryDelay
			baSum += sim.RunEntry(entry, p, sim.BAFirst, nil).RecoveryDelay
			raSum += sim.RunEntry(entry, p, sim.RAFirst, nil).RecoveryDelay
			liSum += sim.RunEntry(entry, p, sim.LiBRA, clf).RecoveryDelay
		}
		if n == 0 {
			t.Rows = append(t.Rows, []string{kind.name, "-", "-", "-", "-"})
			continue
		}
		ms := func(d time.Duration) string {
			return fmt.Sprintf("%.1fms", float64(d)/float64(n)/float64(time.Millisecond))
		}
		t.Rows = append(t.Rows, []string{kind.name, ms(foSum), ms(baSum), ms(raSum), ms(liSum)})
	}
	return t, nil
}

// failoverScenario builds one impairment scenario in the lobby: the initial
// state's primary and failover pairs, the impaired-state entry (with
// features for LiBRA), and the failover pair's post-impairment throughput
// table.
func failoverScenario(seed int64, rng *rand.Rand, impair func(*channel.Link, *rand.Rand)) (*dataset.Entry, *[phy.NumMCS]float64, bool) {
	e := env.Lobby()
	tx := phased.NewArray(geom.V(2, 4), 0, seed)
	// Random client placement in the open part of the lobby.
	pos := geom.V(6+8*rng.Float64(), 2.5+3*rng.Float64())
	rx := phased.NewArray(pos, geom.Deg(tx.Pos.Sub(pos).Angle()), seed+1)
	l := channel.NewLink(e, tx, rx)

	before := l.Snapshot()
	pt, pr, initSNR := before.BestPair()
	initMCS, initTh := phy.BestMCS(initSNR)
	if initTh < phy.WorkingMinThroughputBps {
		return nil, nil, false // initial link not viable here
	}
	ft, fr, _ := sim.FailoverPair(before, pt, pr)
	initMeas := before.Measure(pt, pr)

	impair(l, rng)
	after := l.Snapshot()

	entry := &dataset.Entry{InitMCS: initMCS, InitSNRdB: initSNR, InitThBps: initTh}
	snrInit := after.SNRdB(pt, pr)
	_, _, snrBest := after.BestPair()
	entry.NewSNRInitPair, entry.NewSNRBestPair = snrInit, snrBest
	for m := phy.MinMCS; m <= phy.MaxMCS; m++ {
		entry.InitBeamTh[m] = phy.ExpectedThroughput(m, snrInit)
		entry.BestBeamTh[m] = phy.ExpectedThroughput(m, snrBest)
	}
	entry.Features = dataset.FeaturizeObserved(initMeas, after.Measure(pt, pr), phy.CDR(initMCS, snrInit), initMCS)

	var fo [phy.NumMCS]float64
	snrFo := after.SNRdB(ft, fr)
	for m := phy.MinMCS; m <= phy.MaxMCS; m++ {
		fo[m] = phy.ExpectedThroughput(m, snrFo)
	}
	return entry, &fo, true
}
