package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/cots"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/phased"
)

// MotivationResult captures one §3 COTS experiment: the sector-selection
// timelines of the two device profiles and the throughput comparison with
// beam adaptation enabled vs locked on the best static sector.
type MotivationResult struct {
	Title string
	// Phone and AP are the sector timelines (panels a and b).
	Phone, AP cots.RunResult
	// WithBA and Locked are the AP-link throughputs (panel c), averaged
	// over Trials runs.
	WithBA, Locked float64
	// Trials is the number of averaged runs.
	Trials int
}

// String renders the result, including a downsampled sector-selection
// timeline per device — the textual equivalent of the paper's panels (a)
// and (b), where each character position is one time slice and the symbol
// encodes the selected sector ('*' marks a failed lock, sector 255).
func (m *MotivationResult) String() string {
	gain := (m.Locked/m.WithBA - 1) * 100
	return fmt.Sprintf(
		"== %s ==\n"+
			"phone: %d BA triggers, %d distinct sectors\n"+
			"  sectors over time: %s\n"+
			"ap:    %d BA triggers, %d distinct sectors\n"+
			"  sectors over time: %s\n"+
			"throughput with BA: %.0f Mbps, locked best sector: %.0f Mbps (disabling BA: %+.1f%%)\n",
		m.Title, m.Phone.BATriggers, len(m.Phone.SectorsUsed),
		sectorSparkline(m.Phone.SectorTimeline, 72),
		m.AP.BATriggers, len(m.AP.SectorsUsed),
		sectorSparkline(m.AP.SectorTimeline, 72),
		m.WithBA/1e6, m.Locked/1e6, gain)
}

// sectorSparkline compresses a sector timeline into width characters:
// digits/letters index sectors (0-9 then a-o for 10-24), '*' marks a failed
// lock (sector 255).
func sectorSparkline(tl []cots.SectorSample, width int) string {
	if len(tl) == 0 {
		return "(empty)"
	}
	if width > len(tl) {
		width = len(tl)
	}
	out := make([]byte, width)
	for i := 0; i < width; i++ {
		s := tl[i*len(tl)/width].Sector
		switch {
		case s == cots.NoSector:
			out[i] = '*'
		case s < 10:
			out[i] = byte('0' + s)
		case s < 25:
			out[i] = byte('a' + s - 10)
		default:
			out[i] = '?'
		}
	}
	return string(out)
}

// motivationLink builds the corridor/lobby COTS link of §3.
func motivationLink(seed int64, e *env.Environment, txPos, rxPos geom.Vec) *channel.Link {
	tx := phased.NewArray(txPos, geom.Deg(rxPos.Sub(txPos).Angle()), seed)
	rx := phased.NewArray(rxPos, geom.Deg(txPos.Sub(rxPos).Angle()), seed+7)
	return channel.NewLink(e, tx, rx)
}

// runMotivation executes one scenario for both device profiles and the
// BA-vs-locked comparison.
func runMotivation(s *Suite, title string, envFn func() *env.Environment, txPos, rxPos geom.Vec, setup func(*channel.Link), move func(*channel.Link) func(time.Duration), dur time.Duration) *MotivationResult {
	const trials = 5
	res := &MotivationResult{Title: title, Trials: trials}

	build := func(seed int64) *channel.Link {
		l := motivationLink(seed, envFn(), txPos, rxPos)
		if setup != nil {
			setup(l)
		}
		return l
	}

	// Panel (a): phone uplink sector timeline.
	{
		l := build(s.Seed + 31)
		rng := rand.New(rand.NewSource(s.Seed + 32))
		d := cots.NewDevice(l, cots.PhoneProfile(), rng)
		var mv func(time.Duration)
		if move != nil {
			mv = move(l)
		}
		res.Phone = d.Run(dur, mv, true, 0)
	}
	// Panel (b): AP downlink sector timeline.
	{
		l := build(s.Seed + 33)
		rng := rand.New(rand.NewSource(s.Seed + 34))
		d := cots.NewDevice(l, cots.APProfile(), rng)
		var mv func(time.Duration)
		if move != nil {
			mv = move(l)
		}
		res.AP = d.Run(dur, mv, true, 0)
	}
	// Panel (c): throughput with BA vs locked, averaged over trials.
	for tr := 0; tr < trials; tr++ {
		seed := s.Seed + 40 + int64(tr)*2
		{
			l := build(seed)
			rng := rand.New(rand.NewSource(seed + 1))
			d := cots.NewDevice(l, cots.APProfile(), rng)
			var mv func(time.Duration)
			if move != nil {
				mv = move(l)
			}
			res.WithBA += d.Run(dur, mv, true, 0).ThroughputBps / trials
		}
		{
			l := build(seed)
			locked := cots.BestLockedSector(l)
			rng := rand.New(rand.NewSource(seed + 1))
			d := cots.NewDevice(l, cots.APProfile(), rng)
			var mv func(time.Duration)
			if move != nil {
				mv = move(l)
			}
			res.Locked += d.Run(dur, mv, false, locked).ThroughputBps / trials
		}
	}
	return res
}

// Figure1 reproduces the static COTS scenario (paper: the phone triggers BA
// >100 times in 60 s over 6 sectors; disabling BA improves throughput by
// ~26%).
func Figure1(s *Suite) *MotivationResult {
	return runMotivation(s, "Figure 1: static COTS scenario",
		env.MediumCorridor, geom.V(0.5, 1.6), geom.V(9.5, 1.6), nil, nil, 60*time.Second)
}

// Figure2 reproduces the blockage COTS scenario (paper: 4-5 sectors and
// lock failures; BA costs ~16% vs the best static sector).
func Figure2(s *Suite) *MotivationResult {
	return runMotivation(s, "Figure 2: blockage COTS scenario",
		env.Lobby, geom.V(2, 4), geom.V(5, 4), func(l *channel.Link) {
			mid := l.Tx.Pos.Add(l.Rx.Pos.Sub(l.Tx.Pos).Scale(0.5))
			mid.Y += 0.12 // the person stands just off the exact center line
			l.SetBlockers([]channel.Blocker{cotsBlocker(mid)})
		}, nil, 55*time.Second)
}

// cotsBlocker returns the §3 human blocker standing on the LOS.
func cotsBlocker(p geom.Vec) channel.Blocker { return channel.DefaultBlocker(p) }

// Figure3 reproduces the mobility COTS scenario (paper: sector flapping, but
// BA *gains* ~15% over the best static sector, because the best path changes
// as the client walks).
func Figure3(s *Suite) *MotivationResult {
	// The client walks diagonally across the lobby: distance and bearing
	// from the AP both change, so the initially best sector drifts stale.
	return runMotivation(s, "Figure 3: mobile COTS scenario",
		env.Lobby, geom.V(2, 4), geom.V(5, 4), nil, func(l *channel.Link) func(time.Duration) {
			return cots.WalkDir(l, l.Rx.Pos, geom.V(0.8, 0.6), 0.2)
		}, 40*time.Second)
}
