package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/sim"
	"github.com/libra-wlan/libra/internal/trace"
	"github.com/libra-wlan/libra/internal/vr"
)

// gridCell formats one (BA overhead, FAT) grid label.
func gridCell(ba, fat time.Duration) string {
	return fmt.Sprintf("BA Overhead %v, FAT %v", ba, fat)
}

// Figure10 reproduces the single-impairment bytes-delivered comparison:
// CDFs of Oracle-Data bytes minus each policy's bytes (MB) over the
// combined Buildings 1&2 entries, for every (BA overhead, FAT) combination
// and both flow durations (paper Fig. 10 a-h).
func Figure10(s *Suite) (*Figure, error) {
	clf, err := s.Classifier()
	if err != nil {
		return nil, err
	}
	entries := s.TestEntries()
	fig := &Figure{Title: "Figure 10: single impairment, difference of megabytes delivered vs Oracle-Data"}
	for _, fat := range sim.FATs {
		for _, ba := range sim.BAOverheads {
			panel := Panel{Title: gridCell(ba, fat), XLabel: "Oracle-Data bytes - policy bytes (MB)"}
			for _, flow := range sim.FlowDurs {
				p := sim.Params{BAOverhead: ba, FAT: fat, FlowDur: flow}
				diffs := forEachEntry(entries, func(e *dataset.Entry) map[sim.Policy]float64 {
					oracle := sim.RunEntry(e, p, sim.OracleData, nil)
					out := map[sim.Policy]float64{}
					for _, pol := range sim.Policies {
						d := (oracle.Bytes - sim.RunEntry(e, p, pol, clf).Bytes) / 1e6
						if d < 0 {
							d = 0
						}
						out[pol] = d
					}
					return out
				})
				for _, pol := range sim.Policies {
					panel.Series = append(panel.Series,
						CDFSeries(fmt.Sprintf("%s (%v)", pol, flow), diffs[pol], 64))
				}
			}
			fig.Panels = append(fig.Panels, panel)
		}
	}
	return fig, nil
}

// Figure11 reproduces the single-impairment recovery-delay comparison: CDFs
// of each policy's recovery delay minus Oracle-Delay's (ms), over the same
// grid (paper Fig. 11 a-h).
func Figure11(s *Suite) (*Figure, error) {
	clf, err := s.Classifier()
	if err != nil {
		return nil, err
	}
	entries := s.TestEntries()
	fig := &Figure{Title: "Figure 11: single impairment, difference of recovery delay vs Oracle-Delay"}
	for _, fat := range sim.FATs {
		for _, ba := range sim.BAOverheads {
			p := sim.Params{BAOverhead: ba, FAT: fat, FlowDur: time.Second}
			panel := Panel{Title: gridCell(ba, fat), XLabel: "policy delay - Oracle-Delay delay (ms)"}
			diffs := forEachEntry(entries, func(e *dataset.Entry) map[sim.Policy]float64 {
				oracle := sim.RunEntry(e, p, sim.OracleDelay, nil)
				out := map[sim.Policy]float64{}
				for _, pol := range sim.Policies {
					d := float64(sim.RunEntry(e, p, pol, clf).RecoveryDelay-oracle.RecoveryDelay) / float64(time.Millisecond)
					if d < 0 {
						d = 0
					}
					out[pol] = d
				}
				return out
			})
			for _, pol := range sim.Policies {
				panel.Series = append(panel.Series, CDFSeries(pol.String(), diffs[pol], 64))
			}
			fig.Panels = append(fig.Panels, panel)
		}
	}
	return fig, nil
}

// forEachEntry evaluates fn over the entries on a bounded worker pool and
// gathers per-policy samples. Classifier inference and entry replay are
// read-only, so the fan-out is safe; sample order within a policy follows
// entry order, keeping results deterministic.
func forEachEntry(entries []*dataset.Entry, fn func(*dataset.Entry) map[sim.Policy]float64) map[sim.Policy][]float64 {
	results := make([]map[sim.Policy]float64, len(entries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, e := range entries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, e *dataset.Entry) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = fn(e)
		}(i, e)
	}
	wg.Wait()
	diffs := map[sim.Policy][]float64{}
	for _, r := range results {
		for pol, v := range r {
			diffs[pol] = append(diffs[pol], v)
		}
	}
	return diffs
}

// multiGrid is the reduced grid shown for Figs 12-13 (the paper omits the
// middle BA overheads for space).
var multiGrid = []struct {
	ba, fat time.Duration
}{
	{500 * time.Microsecond, 2 * time.Millisecond},
	{250 * time.Millisecond, 2 * time.Millisecond},
	{500 * time.Microsecond, 10 * time.Millisecond},
	{250 * time.Millisecond, 10 * time.Millisecond},
}

// TimelinesPerKind is the number of random timelines per scenario type
// (50 in §8.3).
const TimelinesPerKind = 50

// multiResults runs all policies over the §8.3 timelines and returns, per
// grid cell, per scenario kind ("All" included), the per-timeline ratios of
// bytes vs Oracle-Data and the mean-recovery-delay differences vs
// Oracle-Delay.
func multiResults(s *Suite, timelines int) (map[string]map[string]map[sim.Policy][]float64, map[string]map[string]map[sim.Policy][]float64, error) {
	clf, err := s.Classifier()
	if err != nil {
		return nil, nil, err
	}
	pools := s.Pools()
	rng := rand.New(rand.NewSource(s.Seed + 51))

	ratios := map[string]map[string]map[sim.Policy][]float64{}
	delays := map[string]map[string]map[sim.Policy][]float64{}
	for _, cell := range multiGrid {
		key := gridCell(cell.ba, cell.fat)
		ratios[key] = map[string]map[sim.Policy][]float64{}
		delays[key] = map[string]map[sim.Policy][]float64{}
		p := sim.Params{BAOverhead: cell.ba, FAT: cell.fat}
		for _, kind := range trace.Kinds {
			tls := pools.RandomTimelines(kind, timelines, rng)
			type tlSamples struct {
				ratio map[sim.Policy]float64
				dly   map[sim.Policy]float64
				valid bool
			}
			samples := make([]tlSamples, len(tls))
			var wg sync.WaitGroup
			sem := make(chan struct{}, runtime.GOMAXPROCS(0))
			for i, tl := range tls {
				wg.Add(1)
				sem <- struct{}{}
				go func(i int, tl *trace.Timeline) {
					defer wg.Done()
					defer func() { <-sem }()
					oracle := sim.RunTimeline(tl, p, sim.OracleData, nil)
					od := sim.RunTimeline(tl, p, sim.OracleDelay, nil)
					sm := tlSamples{ratio: map[sim.Policy]float64{}, dly: map[sim.Policy]float64{}, valid: oracle.Bytes > 0}
					for _, pol := range sim.Policies {
						out := sim.RunTimeline(tl, p, pol, clf)
						if oracle.Bytes > 0 {
							sm.ratio[pol] = out.Bytes / oracle.Bytes
						}
						dd := float64(out.MeanRecoveryDelay()-od.MeanRecoveryDelay()) / float64(time.Millisecond)
						if dd < 0 {
							dd = 0
						}
						sm.dly[pol] = dd
					}
					samples[i] = sm
				}(i, tl)
			}
			wg.Wait()
			r := map[sim.Policy][]float64{}
			d := map[sim.Policy][]float64{}
			for _, sm := range samples {
				for _, pol := range sim.Policies {
					if sm.valid {
						r[pol] = append(r[pol], sm.ratio[pol])
					}
					d[pol] = append(d[pol], sm.dly[pol])
				}
			}
			ratios[key][kind.String()] = r
			delays[key][kind.String()] = d
			// Accumulate "All".
			if ratios[key]["All"] == nil {
				ratios[key]["All"] = map[sim.Policy][]float64{}
				delays[key]["All"] = map[sim.Policy][]float64{}
			}
			for _, pol := range sim.Policies {
				ratios[key]["All"][pol] = append(ratios[key]["All"][pol], r[pol]...)
				delays[key]["All"][pol] = append(delays[key]["All"][pol], d[pol]...)
			}
		}
	}
	return ratios, delays, nil
}

// scenarioOrder fixes the group order of Figs 12-13.
var scenarioOrder = []string{"Motion", "Blockage", "Interference", "Mixed", "All"}

// boxFigure builds a Figs 12/13-style boxplot figure from multiResults data.
func boxFigure(title, ylabel string, data map[string]map[string]map[sim.Policy][]float64) *BoxFigure {
	fig := &BoxFigure{Title: title, YLabel: ylabel}
	for _, cell := range multiGrid {
		key := gridCell(cell.ba, cell.fat)
		panel := BoxPanel{Title: key}
		for _, pol := range sim.Policies {
			for _, sc := range scenarioOrder {
				panel.Groups = append(panel.Groups, BoxGroup{
					Label: fmt.Sprintf("%s / %s", pol, sc),
					Stats: dsp.Box(data[key][sc][pol]),
				})
			}
		}
		fig.Panels = append(fig.Panels, panel)
	}
	return fig
}

// Figure12 reproduces the multi-impairment bytes-delivered boxplots (paper:
// LiBRA delivers 90-95% of Oracle-Data bytes in the median across all
// scenarios; RA First as low as 55% in Mixed).
func Figure12(s *Suite, timelines int) (*BoxFigure, error) {
	if timelines <= 0 {
		timelines = TimelinesPerKind
	}
	ratios, _, err := multiResults(s, timelines)
	if err != nil {
		return nil, err
	}
	return boxFigure("Figure 12: multi-impairment, ratio of data delivered vs Oracle-Data",
		"fraction of Oracle-Data bytes", ratios), nil
}

// Figure13 reproduces the multi-impairment recovery-delay boxplots (paper:
// BA First exceeds 170-250 ms median at 250 ms BA overhead; LiBRA stays at
// most ~35 ms median across all scenarios).
func Figure13(s *Suite, timelines int) (*BoxFigure, error) {
	if timelines <= 0 {
		timelines = TimelinesPerKind
	}
	_, delays, err := multiResults(s, timelines)
	if err != nil {
		return nil, err
	}
	return boxFigure("Figure 13: multi-impairment, mean recovery delay difference vs Oracle-Delay",
		"delay difference (ms)", delays), nil
}

// Table4 reproduces the VR case study (§8.4): average stall duration (ms)
// and average number of stalls for all five policies over mobility
// timelines, with throughputs scaled to COTS levels.
func Table4(s *Suite, timelines int) (*Table, error) {
	if timelines <= 0 {
		timelines = TimelinesPerKind
	}
	clf, err := s.Classifier()
	if err != nil {
		return nil, err
	}
	pools := s.Pools()
	rng := rand.New(rand.NewSource(s.Seed + 61))
	ft := vr.VikingVillage(30*time.Second, s.Seed+62)

	cols := []sim.Policy{sim.BAFirst, sim.RAFirst, sim.LiBRA, sim.OracleData, sim.OracleDelay}
	t := &Table{
		Title:  "Table 4: VR stall duration (ms) / number of stalls",
		Header: []string{"BA Overhead, FAT"},
	}
	for _, pol := range cols {
		t.Header = append(t.Header, pol.String())
	}
	for _, cell := range multiGrid {
		p := sim.Params{BAOverhead: cell.ba, FAT: cell.fat}
		row := []string{fmt.Sprintf("%v, %v", cell.ba, cell.fat)}
		// The same timelines are replayed for every policy; each covers at
		// least the 30 s scene.
		tls := make([]*trace.Timeline, timelines)
		for i := range tls {
			tls[i] = pools.RandomTimelineDur(trace.Motion, rng, ft.Duration()+time.Second)
		}
		for _, pol := range cols {
			var stallMs, stalls float64
			for _, tl := range tls {
				out := sim.RunTimeline(tl, p, pol, clf)
				res := vr.Play(ft, vr.Scale(out.Rate, vr.COTSScale), 100*time.Millisecond)
				stallMs += float64(res.AvgStall()) / float64(time.Millisecond)
				stalls += float64(res.Stalls)
			}
			n := float64(len(tls))
			row = append(row, fmt.Sprintf("%.1f/%.1f", stallMs/n, stalls/n))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
