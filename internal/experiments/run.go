package experiments

import (
	"context"
	"fmt"
	"time"
)

// This file is the suite orchestrator: a single entry point that runs the
// whole paper-reproduction battery (or a named subset) in canonical order,
// with cooperative cancellation between experiments. cmd/libra-figures is a
// thin shell around it; embedders get the same battery programmatically.

// NamedResult pairs a step key with its artifact.
type NamedResult struct {
	Key    string
	Result Result
}

// RunOptions configures Suite.Run.
type RunOptions struct {
	// Only restricts the run to the named steps (nil or empty = all).
	// Unknown names are an error, so typos fail loudly.
	Only []string
	// Reps is the number of cross-validation repetitions for the "cv" step
	// (<= 0 selects 20; the paper uses 500).
	Reps int
	// Timelines is the number of random timelines per scenario kind for
	// the multi-impairment steps (<= 0 selects TimelinesPerKind).
	Timelines int
	// AlphaBAOverhead is the BA overhead swept by the "alphasweep" step
	// (<= 0 selects 150ms).
	AlphaBAOverhead time.Duration
	// Emit, when non-nil, receives each artifact as soon as its step
	// completes (streaming output); a non-nil return aborts the run.
	Emit func(key string, res Result) error
}

// suiteStep is one entry of the canonical battery.
type suiteStep struct {
	key string
	run func(s *Suite, opt RunOptions) (Result, error)
}

// suiteSteps lists every experiment in canonical order: motivation,
// datasets, metric CDFs, the ML study, and the trace-driven evaluation.
var suiteSteps = []suiteStep{
	{"fig1", func(s *Suite, _ RunOptions) (Result, error) { return Figure1(s), nil }},
	{"fig2", func(s *Suite, _ RunOptions) (Result, error) { return Figure2(s), nil }},
	{"fig3", func(s *Suite, _ RunOptions) (Result, error) { return Figure3(s), nil }},
	{"table1", func(s *Suite, _ RunOptions) (Result, error) { return Table1(s), nil }},
	{"table2", func(s *Suite, _ RunOptions) (Result, error) { return Table2(s), nil }},
	{"fig4", func(s *Suite, _ RunOptions) (Result, error) { return Figure4(s), nil }},
	{"fig5", func(s *Suite, _ RunOptions) (Result, error) { return Figure5(s), nil }},
	{"fig6", func(s *Suite, _ RunOptions) (Result, error) { return Figure6(s), nil }},
	{"fig7", func(s *Suite, _ RunOptions) (Result, error) { return Figure7(s), nil }},
	{"fig8", func(s *Suite, _ RunOptions) (Result, error) { return Figure8(s), nil }},
	{"fig9", func(s *Suite, _ RunOptions) (Result, error) { return Figure9(s), nil }},
	{"cv", func(s *Suite, opt RunOptions) (Result, error) { return CrossValidation(s, opt.Reps) }},
	{"transfer", func(s *Suite, _ RunOptions) (Result, error) { return TransferAccuracy(s) }},
	{"table3", func(s *Suite, _ RunOptions) (Result, error) { return Table3(s) }},
	{"threeclass", func(s *Suite, _ RunOptions) (Result, error) { return ThreeClass(s) }},
	{"futurework", func(s *Suite, opt RunOptions) (Result, error) { return FutureWork(s, opt.Timelines) }},
	{"failover", func(s *Suite, opt RunOptions) (Result, error) { return FailoverComparison(s, opt.Timelines/2) }},
	{"alphasweep", func(s *Suite, opt RunOptions) (Result, error) { return AlphaSweep(s, opt.AlphaBAOverhead) }},
	{"fig10", func(s *Suite, _ RunOptions) (Result, error) { return Figure10(s) }},
	{"fig11", func(s *Suite, _ RunOptions) (Result, error) { return Figure11(s) }},
	{"fig12", func(s *Suite, opt RunOptions) (Result, error) { return Figure12(s, opt.Timelines) }},
	{"fig13", func(s *Suite, opt RunOptions) (Result, error) { return Figure13(s, opt.Timelines) }},
	{"table4", func(s *Suite, opt RunOptions) (Result, error) { return Table4(s, opt.Timelines) }},
	{"multiap", func(s *Suite, _ RunOptions) (Result, error) { return MultiAP(s) }},
}

// StepKeys returns the canonical step order accepted by RunOptions.Only.
func StepKeys() []string {
	keys := make([]string, len(suiteSteps))
	for i, st := range suiteSteps {
		keys[i] = st.key
	}
	return keys
}

// Run executes the battery (or the subset named in opt.Only) in canonical
// order and returns the completed artifacts.
func (s *Suite) Run(opt RunOptions) ([]NamedResult, error) {
	return s.RunContext(context.Background(), opt)
}

// RunContext is Run with cooperative cancellation between experiments: a
// canceled ctx stops before the next step and returns the artifacts already
// completed alongside ctx's error. Individual steps also cut their own
// internal fan-outs short where they support it (campaign generation and
// cross-validation shards).
func (s *Suite) RunContext(ctx context.Context, opt RunOptions) ([]NamedResult, error) {
	if opt.Reps <= 0 {
		opt.Reps = 20
	}
	if opt.Timelines <= 0 {
		opt.Timelines = TimelinesPerKind
	}
	if opt.AlphaBAOverhead <= 0 {
		opt.AlphaBAOverhead = 150 * time.Millisecond
	}
	want := map[string]bool{}
	for _, k := range opt.Only {
		want[k] = true
	}
	known := map[string]bool{}
	for _, st := range suiteSteps {
		known[st.key] = true
	}
	for k := range want {
		if !known[k] {
			return nil, fmt.Errorf("experiments: unknown step %q", k)
		}
	}

	var done []NamedResult
	for _, st := range suiteSteps {
		if len(want) > 0 && !want[st.key] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return done, err
		}
		res, err := st.run(s, opt)
		if err != nil {
			return done, fmt.Errorf("experiments: step %s: %w", st.key, err)
		}
		done = append(done, NamedResult{Key: st.key, Result: res})
		if opt.Emit != nil {
			if err := opt.Emit(st.key, res); err != nil {
				return done, err
			}
		}
	}
	return done, nil
}
