// Package experiments regenerates every table and figure of the paper's
// evaluation: the §3 COTS motivation experiments (Figs 1-3), the dataset
// summaries (Tables 1-2), the PHY metric CDFs (Figs 4-9), the ML accuracy
// study and Gini importances (§6.2, Table 3), the single- and
// multi-impairment policy comparisons (Figs 10-13), and the VR case study
// (Table 4). Each experiment returns a structured result that renders to
// aligned text matching the paper's rows and series.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/dsp"
	"github.com/libra-wlan/libra/internal/trace"
)

// Suite shares the expensive inputs (generated campaigns, trained models,
// timeline pools) across experiments.
type Suite struct {
	// Seed drives every random process in the suite.
	Seed int64

	mainOnce  sync.Once
	mainCamp  *dataset.Campaign
	testOnce  sync.Once
	testCamp  *dataset.Campaign
	clfOnce   sync.Once
	clf       *core.MLClassifier
	clfErr    error
	poolsOnce sync.Once
	pools     *trace.Pools
}

// NewSuite creates a suite with the given seed.
func NewSuite(seed int64) *Suite { return &Suite{Seed: seed} }

// Main returns the main/training campaign (Table 1), generating it once.
func (s *Suite) Main() *dataset.Campaign {
	s.mainOnce.Do(func() { s.mainCamp = dataset.GenerateMain(s.Seed) })
	return s.mainCamp
}

// UseMain injects a pre-built main campaign — typically one loaded from a
// libra-ds file — in place of in-process generation. First call wins: it must
// run before anything touches Main(), and later calls (or generation) are
// no-ops.
func (s *Suite) UseMain(c *dataset.Campaign) {
	s.mainOnce.Do(func() { s.mainCamp = c })
}

// UseTest injects the test campaign under the same first-call-wins contract
// as UseMain.
func (s *Suite) UseTest(c *dataset.Campaign) {
	s.testOnce.Do(func() { s.testCamp = c })
}

// Test returns the testing campaign (Table 2), generating it once.
func (s *Suite) Test() *dataset.Campaign {
	s.testOnce.Do(func() { s.testCamp = dataset.GenerateTest(s.Seed + 1) })
	return s.testCamp
}

// Classifier returns LiBRA's production 3-class random forest, trained once
// on the main campaign.
func (s *Suite) Classifier() (*core.MLClassifier, error) {
	s.clfOnce.Do(func() { s.clf, s.clfErr = core.TrainDefaultClassifier(s.Main(), s.Seed+2) })
	return s.clf, s.clfErr
}

// Pools returns the multi-impairment timeline state pools.
func (s *Suite) Pools() *trace.Pools {
	s.poolsOnce.Do(func() { s.pools = trace.NewPools(s.Seed + 3) })
	return s.pools
}

// TestEntries returns the non-NA entries of the testing campaign — the
// combined Buildings 1 & 2 set the single-impairment evaluation replays.
func (s *Suite) TestEntries() []*dataset.Entry {
	var out []*dataset.Entry
	for _, e := range s.Test().Entries {
		if e.Impairment != dataset.NoImpairment {
			out = append(out, e)
		}
	}
	return out
}

// Table is a generic result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// CDFSeries builds a plottable CDF curve from a sample.
func CDFSeries(label string, sample []float64, maxPoints int) Series {
	c := dsp.NewCDF(sample)
	x, y := c.Points(maxPoints)
	return Series{Label: label, X: x, Y: y}
}

// Panel is one subfigure.
type Panel struct {
	Title  string
	XLabel string
	Series []Series
}

// Figure is a multi-panel figure result.
type Figure struct {
	Title  string
	Panels []Panel
}

// String renders the figure as quantile summaries per series — the textual
// equivalent of the paper's CDF plots.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	qs := []float64{0.10, 0.25, 0.50, 0.75, 0.90}
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "-- %s (x: %s)\n", p.Title, p.XLabel)
		for _, srs := range p.Series {
			fmt.Fprintf(&b, "   %-22s n=%-4d", srs.Label, len(srs.X))
			if len(srs.X) > 0 {
				c := dsp.NewCDF(srs.X)
				for _, q := range qs {
					fmt.Fprintf(&b, " p%02.0f=%8.2f", q*100, c.Quantile(q))
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// BoxFigure is a boxplot-style figure (Figs 12-13).
type BoxFigure struct {
	Title  string
	YLabel string
	Panels []BoxPanel
}

// BoxPanel is one subfigure of grouped boxplots.
type BoxPanel struct {
	Title string
	// Groups[i] is one labeled box.
	Groups []BoxGroup
}

// BoxGroup is one box of a boxplot.
type BoxGroup struct {
	Label string
	Stats dsp.BoxStats
}

// String renders the boxplot figure as five-number summaries.
func (f *BoxFigure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s == (y: %s)\n", f.Title, f.YLabel)
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "-- %s\n", p.Title)
		for _, g := range p.Groups {
			s := g.Stats
			fmt.Fprintf(&b, "   %-28s min=%8.2f q1=%8.2f med=%8.2f q3=%8.2f max=%8.2f (n=%d)\n",
				g.Label, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.N)
		}
	}
	return b.String()
}
