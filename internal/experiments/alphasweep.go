package experiments

import (
	"fmt"
	"time"

	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/sim"
)

// AlphaSweep studies the utility knob of Eqn. 1: U = α·Th/Thmax +
// (1-α)·(1-D/Dmax). The paper fixes α per BA-overhead regime (0.7 for
// cheap sweeps, 0.5 for expensive ones); the sweep shows why — as α falls
// (delay matters more), RA First's fast-but-suboptimal recoveries gain
// utility against BA First's optimal-but-slow ones, and the two heuristics
// swap places across the sweep. LiBRA is never the worst policy at any α —
// the "strikes a balance between throughput and link recovery delay" claim
// of the abstract, made quantitative.
func AlphaSweep(s *Suite, baOverhead time.Duration) (*Table, error) {
	clf, err := s.Classifier()
	if err != nil {
		return nil, err
	}
	entries := s.TestEntries()
	p := sim.Params{BAOverhead: baOverhead, FAT: 2 * time.Millisecond, FlowDur: time.Second}

	t := &Table{
		Title:  fmt.Sprintf("Mean utility vs alpha (Eqn. 1) at BA overhead %v", baOverhead),
		Header: []string{"alpha", "BA First", "RA First", "LiBRA"},
	}
	pols := []sim.Policy{sim.BAFirst, sim.RAFirst, sim.LiBRA}

	// Precompute per-entry outcomes once; utility is a pure function of
	// (throughput, delay, alpha).
	type po struct {
		th    float64
		delay time.Duration
	}
	outs := make(map[sim.Policy][]po, len(pols))
	for _, pol := range pols {
		for _, e := range entries {
			out := sim.RunEntry(e, p, pol, clf)
			th := e.InitBeamTh[out.FinalMCS]
			if out.FinalOnBestBeam {
				th = e.BestBeamTh[out.FinalMCS]
			}
			outs[pol] = append(outs[pol], po{th: th, delay: out.RecoveryDelay})
		}
	}

	for _, alpha := range []float64{0, 0.25, 0.5, 0.7, 1} {
		cfg := p.Config()
		cfg.Alpha = alpha
		row := []string{fmt.Sprintf("%.2f", alpha)}
		for _, pol := range pols {
			var sum float64
			for _, o := range outs[pol] {
				sum += core.Utility(o.th, o.delay, cfg)
			}
			row = append(row, fmt.Sprintf("%.3f", sum/float64(len(outs[pol]))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
