package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/predict"
	"github.com/libra-wlan/libra/internal/sim"
	"github.com/libra-wlan/libra/internal/trace"
)

// FutureWork evaluates the paper's §7 future-work direction: learning link
// status patterns over longer periods. For each scenario kind it replays
// LiBRA over random timelines, feeds the per-break action sequence into an
// order-2 Markov predictor, and reports the online next-action prediction
// accuracy, the fraction of breaks the predictor was confident about, and
// the mean recovery delay a proactive sweep (pre-armed on confident BA
// predictions) would have removed per break.
//
// The expected shape: blockage and interference timelines alternate
// impair/recover and are highly predictable; motion and mixed timelines are
// not. A recurring blocker is exactly the case the paper's discussion calls
// out.
func FutureWork(s *Suite, timelines int) (*Table, error) {
	if timelines <= 0 {
		timelines = TimelinesPerKind
	}
	clf, err := s.Classifier()
	if err != nil {
		return nil, err
	}
	pools := s.Pools()
	rng := rand.New(rand.NewSource(s.Seed + 71))
	p := sim.Params{BAOverhead: 5 * time.Millisecond, FAT: 2 * time.Millisecond}

	t := &Table{
		Title:  "§7 future work: link-pattern prediction (order-2 Markov over per-break actions)",
		Header: []string{"Scenario", "Breaks", "Coverage", "Accuracy", "Delay saved/break"},
	}
	for _, kind := range trace.Kinds {
		var breaks int
		var accSum, covSum float64
		var savable time.Duration
		counted := 0
		for i := 0; i < timelines; i++ {
			tl := pools.RandomTimeline(kind, rng)
			res := sim.RunTimeline(tl, p, sim.LiBRA, clf)
			breaks += res.Breaks
			if len(res.Actions) < 4 {
				continue
			}
			acc, cov := predict.Accuracy(res.Actions, 2)
			if cov == 0 {
				continue
			}
			counted++
			accSum += acc
			covSum += cov
			// Proactive saving: every covered, correctly-predicted BA break
			// could have had its sweep pre-armed during the previous
			// segment, removing the BA overhead from the recovery delay.
			baFrac := 0.0
			for _, a := range res.Actions {
				if a == dataset.ActBA {
					baFrac++
				}
			}
			baFrac /= float64(len(res.Actions))
			savable += time.Duration(acc * cov * baFrac * float64(p.BAOverhead))
		}
		row := []string{kind.String(), fmt.Sprint(breaks)}
		if counted == 0 {
			row = append(row, "-", "-", "-")
		} else {
			n := float64(counted)
			row = append(row,
				fmt.Sprintf("%.0f%%", covSum/n*100),
				fmt.Sprintf("%.0f%%", accSum/n*100),
				fmt.Sprintf("%.2fms", float64(savable)/n/float64(time.Millisecond)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
