package experiments

import (
	"strings"
	"testing"
)

func TestMultiAPTable(t *testing.T) {
	s := testSuite(t)
	tab, err := MultiAP(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows, want one per policy", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r) != len(tab.Header) {
			t.Fatalf("row %v does not match header %v", r, tab.Header)
		}
		if r[1] == "0.000" {
			t.Errorf("policy %s delivered no traffic", r[0])
		}
	}
	if !strings.Contains(tab.CSV(), "LiBRA") {
		t.Error("CSV output missing LiBRA row")
	}
}

func TestMultiAPRegistered(t *testing.T) {
	for _, k := range StepKeys() {
		if k == "multiap" {
			return
		}
	}
	t.Error("multiap step not registered in suiteSteps")
}
