package experiments

import (
	"fmt"
	"strings"
)

// Result is any experiment output: renderable as aligned text and
// exportable as CSV for external plotting.
type Result interface {
	String() string
	CSV() string
}

// csvEscape quotes a cell when needed.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func csvRow(cells ...string) string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = csvEscape(c)
	}
	return strings.Join(out, ",")
}

// CSV exports the table: a header row followed by data rows.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow(t.Header...))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvRow(r...))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV exports the figure as long-format points: panel, series, x, y.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("panel,series,x,y\n")
	for _, p := range f.Panels {
		for _, s := range p.Series {
			for i := range s.X {
				b.WriteString(csvRow(p.Title, s.Label,
					fmt.Sprintf("%g", s.X[i]), fmt.Sprintf("%g", s.Y[i])))
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// CSV exports the boxplot figure as five-number summaries per group.
func (f *BoxFigure) CSV() string {
	var b strings.Builder
	b.WriteString("panel,group,min,q1,median,q3,max,mean,n\n")
	for _, p := range f.Panels {
		for _, g := range p.Groups {
			s := g.Stats
			b.WriteString(csvRow(p.Title, g.Label,
				fmt.Sprintf("%g", s.Min), fmt.Sprintf("%g", s.Q1),
				fmt.Sprintf("%g", s.Median), fmt.Sprintf("%g", s.Q3),
				fmt.Sprintf("%g", s.Max), fmt.Sprintf("%g", s.Mean),
				fmt.Sprint(s.N)))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV exports a motivation result as one summary row plus the sector
// timelines in long format.
func (m *MotivationResult) CSV() string {
	var b strings.Builder
	b.WriteString("metric,value\n")
	b.WriteString(csvRow("phone_ba_triggers", fmt.Sprint(m.Phone.BATriggers)) + "\n")
	b.WriteString(csvRow("phone_sectors", fmt.Sprint(len(m.Phone.SectorsUsed))) + "\n")
	b.WriteString(csvRow("ap_ba_triggers", fmt.Sprint(m.AP.BATriggers)) + "\n")
	b.WriteString(csvRow("ap_sectors", fmt.Sprint(len(m.AP.SectorsUsed))) + "\n")
	b.WriteString(csvRow("throughput_with_ba_mbps", fmt.Sprintf("%.1f", m.WithBA/1e6)) + "\n")
	b.WriteString(csvRow("throughput_locked_mbps", fmt.Sprintf("%.1f", m.Locked/1e6)) + "\n")
	b.WriteString("device,at_ms,sector\n")
	for _, s := range m.Phone.SectorTimeline {
		b.WriteString(csvRow("phone", fmt.Sprintf("%.0f", float64(s.At.Milliseconds())), fmt.Sprint(s.Sector)) + "\n")
	}
	for _, s := range m.AP.SectorTimeline {
		b.WriteString(csvRow("ap", fmt.Sprintf("%.0f", float64(s.At.Milliseconds())), fmt.Sprint(s.Sector)) + "\n")
	}
	return b.String()
}
