package experiments

import (
	"fmt"

	"github.com/libra-wlan/libra/internal/dataset"
)

// metricFigure builds one of Figs 4-9: per-impairment panels (displacement,
// blockage, interference, overall) with the CDFs of one PHY metric for the
// BA-preferred and RA-preferred cases. skipZero drops entries whose metric
// is undefined (Pearson similarity over a dead signal), matching the
// reduced counts in the paper's Figs 6-7.
func metricFigure(s *Suite, title string, feature int, xLabel string, skipZero bool) *Figure {
	camp := s.Main()
	fig := &Figure{Title: title}
	panels := []struct {
		name string
		im   dataset.Impairment
	}{
		{"Displacement", dataset.Displacement},
		{"Blockage", dataset.Blockage},
		{"Interference", dataset.Interference},
		{"Overall", -1},
	}
	for _, p := range panels {
		var ba, ra []float64
		for _, e := range camp.Entries {
			if e.Impairment == dataset.NoImpairment {
				continue
			}
			if p.im >= 0 && e.Impairment != p.im {
				continue
			}
			v := e.Features[feature]
			if skipZero && v == 0 {
				continue
			}
			if e.Label == dataset.ActBA {
				ba = append(ba, v)
			} else {
				ra = append(ra, v)
			}
		}
		fig.Panels = append(fig.Panels, Panel{
			Title:  p.name,
			XLabel: xLabel,
			Series: []Series{
				CDFSeries(fmt.Sprintf("BA (%d)", len(ba)), ba, 64),
				CDFSeries(fmt.Sprintf("RA (%d)", len(ra)), ra, 64),
			},
		})
	}
	return fig
}

// Figure4 reproduces the SNR-difference CDFs (paper: a >7 dB drop under
// displacement always means BA; the threshold shifts to ~12 dB overall).
func Figure4(s *Suite) *Figure {
	return metricFigure(s, "Figure 4: SNR Difference", 0, "SNR difference (dB)", false)
}

// Figure5 reproduces the ToF-difference CDFs (paper: negative differences —
// backward motion — almost always mean RA; 0/∞ means BA).
func Figure5(s *Suite) *Figure {
	return metricFigure(s, "Figure 5: Time-of-flight Difference", 1, "ToF difference (ns; 25=unmeasurable)", false)
}

// Figure6 reproduces the PDP-similarity CDFs (paper: similarity is always
// >0.65 thanks to 60 GHz channel sparsity and cannot separate the classes).
func Figure6(s *Suite) *Figure {
	return metricFigure(s, "Figure 6: PDP Similarity", 3, "Pearson correlation", true)
}

// Figure7 reproduces the CSI (FFT-PDP) similarity CDFs (paper: much more
// diverse than PDP similarity but still heavily overlapping).
func Figure7(s *Suite) *Figure {
	return metricFigure(s, "Figure 7: CSI Similarity", 4, "Pearson correlation", true)
}

// Figure8 reproduces the CDR CDFs (paper: CDR is 0 for ~90% of BA and ~70%
// of RA cases, so it cannot be used alone).
func Figure8(s *Suite) *Figure {
	return metricFigure(s, "Figure 8: Codeword Delivery Ratio", 5, "CDR", false)
}

// Figure9 reproduces the initial-MCS CDFs (paper: RA-preferred cases almost
// always start from MCS 5-6; low initial MCS means BA).
func Figure9(s *Suite) *Figure {
	return metricFigure(s, "Figure 9: Initial MCS", 6, "MCS index", false)
}
