package experiments

import (
	"fmt"

	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/ml"
)

// datasetSummary builds a Table 1/2-shaped summary of a campaign.
func datasetSummary(c *dataset.Campaign, title string, envGroups []envGroup) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"Scenario", "Total", "BA", "RA", "Positions"},
	}
	for _, h := range envGroups {
		t.Header = append(t.Header, h.label)
	}
	rows := []struct {
		name string
		im   dataset.Impairment
	}{
		{"Displacement", dataset.Displacement},
		{"Blockage", dataset.Blockage},
		{"Interference", dataset.Interference},
	}
	for _, r := range rows {
		ba, ra, _ := c.CountLabels(r.im)
		row := []string{
			r.name,
			fmt.Sprint(ba + ra),
			fmt.Sprint(ba),
			fmt.Sprint(ra),
			fmt.Sprint(c.SiteCount(r.im, "")),
		}
		for _, g := range envGroups {
			n := 0
			for _, p := range g.prefixes {
				n += c.SiteCount(r.im, p)
			}
			row = append(row, fmt.Sprint(n))
		}
		t.Rows = append(t.Rows, row)
	}
	ba, ra, _ := c.CountLabels(-1)
	total := []string{"Overall", fmt.Sprint(ba + ra), fmt.Sprint(ba), fmt.Sprint(ra), fmt.Sprint(c.SiteCount(-1, ""))}
	for _, g := range envGroups {
		n := 0
		for _, p := range g.prefixes {
			n += c.SiteCount(-1, p)
		}
		total = append(total, fmt.Sprint(n))
	}
	t.Rows = append(t.Rows, total)
	return t
}

// envGroup maps a display column to environment name prefixes.
type envGroup struct {
	label    string
	prefixes []string
}

// Table1 reproduces the main/training dataset summary (paper Table 1:
// 668 cases — 488 BA / 180 RA — over 118 positions).
func Table1(s *Suite) *Table {
	return datasetSummary(s.Main(), "Table 1: Main/training dataset summary", []envGroup{
		{"Lobby", []string{"lobby"}},
		{"Lab", []string{"lab"}},
		{"Conf.", []string{"conference"}},
		{"Corridors", []string{"corridor"}},
	})
}

// Table2 reproduces the testing dataset summary (paper Table 2: 228 cases —
// 165 BA / 63 RA — over 42 positions in two different buildings).
func Table2(s *Suite) *Table {
	return datasetSummary(s.Test(), "Table 2: Testing dataset summary", []envGroup{
		{"Building 1", []string{"building1"}},
		{"Building 2", []string{"building2"}},
	})
}

// Table3 reproduces the Gini feature importances (paper Table 3: InitialMCS
// .26 and SNR .215 highest; PDP .06 lowest; no metric dominates).
func Table3(s *Suite) (*Table, error) {
	rf := &ml.RandomForest{NumTrees: 100, MaxDepth: 10, Seed: s.Seed + 11}
	if err := rf.Fit(s.Test().ToML(false)); err != nil {
		return nil, err
	}
	imp := rf.GiniImportance()
	t := &Table{
		Title:  "Table 3: Gini importance (RF on the testing dataset)",
		Header: append([]string(nil), dataset.FeatureNames...),
	}
	row := make([]string, len(imp))
	for i, v := range imp {
		row[i] = fmt.Sprintf("%.3f", v)
	}
	t.Rows = [][]string{row}
	return t, nil
}
