// Package libra is a simulation-backed reproduction of LiBRA, the
// learning-based link adaptation framework for 60 GHz WLANs of Aggarwal et
// al. (CoNEXT 2020). It bundles:
//
//   - a geometric 60 GHz indoor channel simulator (image-method ray tracing,
//     phased-array codebooks with imperfect side lobes, human blockage,
//     co-channel interference) standing in for the paper's X60 testbed;
//   - the X60-style PHY and TDMA MAC (9 single-carrier MCSs, 300 Mbps to
//     4.75 Gbps, per-codeword CRC, Block ACK);
//   - standard-compliant beam adaptation (sector level sweeps) and rate
//     adaptation (frame-based downward probing) algorithms;
//   - a from-scratch ML toolbox (decision trees, random forests, SVM, DNN)
//     with stratified cross-validation;
//   - the measurement-campaign emulation that regenerates the paper's
//     datasets (Tables 1-2) with features and ground truth per §5;
//   - LiBRA itself (Algorithm 1) plus the BA-First/RA-First heuristics and
//     the Oracle-Data/Oracle-Delay baselines;
//   - the full §8 trace-driven evaluation harness (Figs 10-13, Table 4).
//
// The package root re-exports the main entry points; the implementation
// lives in focused packages under internal/.
package libra

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"github.com/libra-wlan/libra/internal/adapt"
	"github.com/libra-wlan/libra/internal/channel"
	"github.com/libra-wlan/libra/internal/core"
	"github.com/libra-wlan/libra/internal/dataset"
	"github.com/libra-wlan/libra/internal/env"
	"github.com/libra-wlan/libra/internal/experiments"
	"github.com/libra-wlan/libra/internal/geom"
	"github.com/libra-wlan/libra/internal/mac"
	"github.com/libra-wlan/libra/internal/phased"
	"github.com/libra-wlan/libra/internal/phy"
	"github.com/libra-wlan/libra/internal/predict"
	"github.com/libra-wlan/libra/internal/sim"
	"github.com/libra-wlan/libra/internal/sim/engine"
	"github.com/libra-wlan/libra/internal/trace"
	"github.com/libra-wlan/libra/internal/vr"
)

// Geometry and environments.
type (
	// Vec is a 2-D point in meters.
	Vec = geom.Vec
	// Environment is an indoor floor plan with reflective walls.
	Environment = env.Environment
)

// V constructs a Vec.
func V(x, y float64) Vec { return geom.V(x, y) }

// Environment constructors (Appendix A.2).
var (
	Lobby          = env.Lobby
	Lab            = env.Lab
	ConferenceRoom = env.ConferenceRoom
	NarrowCorridor = env.NarrowCorridor
	MediumCorridor = env.MediumCorridor
	WideCorridor   = env.WideCorridor
	Building1      = env.Building1
	Building2      = env.Building2
)

// Channel and PHY.
type (
	// Link is a simulated 60 GHz Tx-Rx pair.
	Link = channel.Link
	// Measurement is one PHY-layer observation (SNR, noise, ToF, PDP).
	Measurement = channel.Measurement
	// Blocker is a human blocker on the floor plan.
	Blocker = channel.Blocker
	// Interferer is a co-channel hidden terminal.
	Interferer = channel.Interferer
	// Array is a 25-beam phased antenna array.
	Array = phased.Array
	// MCS is a modulation and coding scheme index (0-8).
	MCS = phy.MCS
	// Station is a MAC-layer transmitter on a link.
	Station = mac.Station
)

// NewArray builds a phased array at pos with the given mechanical
// orientation (degrees) and a deterministic, seed-perturbed codebook.
func NewArray(pos Vec, orientDeg float64, seed int64) *Array {
	return phased.NewArray(pos, orientDeg, seed)
}

// NewLink builds a link between two arrays in an environment.
func NewLink(e *Environment, tx, rx *Array) *Link { return channel.NewLink(e, tx, rx) }

// NewStation builds a MAC transmitter on a link.
func NewStation(l *Link, rng *rand.Rand) *Station { return mac.NewStation(l, rng) }

// Adaptation mechanisms.
type (
	// BeamAdapter trains beams (BA).
	BeamAdapter = adapt.BeamAdapter
	// RateAdapter searches rates (RA).
	RateAdapter = adapt.RateAdapter
	// ExhaustiveSLS is the O(N^2) ground-truth sweep.
	ExhaustiveSLS = adapt.ExhaustiveSLS
	// StandardSLS is the 802.11ad O(N) two-phase sweep.
	StandardSLS = adapt.StandardSLS
	// TxOnlySLS is the COTS Tx-only sweep with quasi-omni reception.
	TxOnlySLS = adapt.TxOnlySLS
	// ProbeDownRA is the paper's frame-based downward rate search.
	ProbeDownRA = adapt.ProbeDownRA
)

// Datasets and labels.
type (
	// Campaign is a generated measurement campaign (dataset + positions).
	Campaign = dataset.Campaign
	// Entry is one labeled dataset sample.
	Entry = dataset.Entry
	// Action is an adaptation decision: BA, RA, or NA.
	Action = dataset.Action
)

// Adaptation actions.
const (
	ActBA = dataset.ActBA
	ActRA = dataset.ActRA
	ActNA = dataset.ActNA
)

// GenerateMainDataset reproduces the main/training campaign (Table 1:
// 668 labeled cases plus NA augmentation).
func GenerateMainDataset(seed int64) *Campaign { return dataset.GenerateMain(seed) }

// GenerateTestDataset reproduces the two-building testing campaign
// (Table 2: 228 labeled cases plus NA augmentation).
func GenerateTestDataset(seed int64) *Campaign { return dataset.GenerateTest(seed) }

// GenerateMainDatasetContext is GenerateMainDataset with cooperative
// cancellation at campaign-shard boundaries: a canceled ctx stops the
// parallel spec fan-out and returns ctx's error. A completed campaign is
// byte-identical to GenerateMainDataset's for the same seed.
func GenerateMainDatasetContext(ctx context.Context, seed int64) (*Campaign, error) {
	return dataset.GenerateMainContext(ctx, seed)
}

// GenerateTestDatasetContext is GenerateTestDataset with cooperative
// cancellation at campaign-shard boundaries; see GenerateMainDatasetContext.
func GenerateTestDatasetContext(ctx context.Context, seed int64) (*Campaign, error) {
	return dataset.GenerateTestContext(ctx, seed)
}

// LiBRA core.
type (
	// Config holds LiBRA's protocol parameters (§8.1).
	Config = core.Config
	// Classifier maps PHY features to an adaptation action.
	Classifier = core.Classifier
	// Controller is the online Algorithm 1 state machine.
	Controller = core.Controller
)

// DefaultConfig returns the paper's default parameterization.
func DefaultConfig() Config { return core.DefaultConfig() }

// TrainClassifier trains the production 3-class random forest on a campaign.
func TrainClassifier(c *Campaign, seed int64) (Classifier, error) {
	return core.TrainDefaultClassifier(c, seed)
}

// NewController assembles the online LiBRA controller on a station.
func NewController(st *Station, clf Classifier, cfg Config) *Controller {
	return core.NewController(st, clf, cfg)
}

// Trace-driven evaluation (§8).
type (
	// Policy identifies an adaptation policy under evaluation.
	Policy = sim.Policy
	// Params is one evaluation grid cell (BA overhead, FAT, flow length).
	Params = sim.Params
	// Outcome is a single-break policy result.
	Outcome = sim.Outcome
	// TimelineResult is a multi-impairment run result.
	TimelineResult = sim.TimelineResult
	// Timeline is a multi-segment channel scenario.
	Timeline = trace.Timeline
	// ScenarioPools pre-generates timeline channel states.
	ScenarioPools = trace.Pools
	// Scenario is the input of one unified policy run: exactly one of an
	// entry (single break) or a timeline (multi-impairment) is set.
	Scenario = sim.Scenario
	// RunOptions carries the parameters, policy, classifier and protocol
	// variant of a unified policy run.
	RunOptions = sim.Options
	// RunResult is the output of Run: Outcome for entry scenarios,
	// Timeline for timeline scenarios.
	RunResult = sim.Result
	// Variant selects a protocol-design ablation (standard Tx-initiated,
	// failover-beam, or Rx-initiated).
	Variant = sim.Variant
)

// Protocol-design variants for RunOptions.Variant.
const (
	VariantStandard    = sim.VariantStandard
	VariantFailover    = sim.VariantFailover
	VariantRxInitiated = sim.VariantRxInitiated
)

// Run executes one scenario under one set of options — the unified,
// context-first entry point that subsumes RunEntry, RunTimeline and their
// variant siblings. New code should call Run; the older names remain as thin
// wrappers over it and are documented deprecated at their definitions.
func Run(ctx context.Context, sc Scenario, opt RunOptions) (RunResult, error) {
	return sim.Run(ctx, sc, opt)
}

// Evaluation policies.
const (
	PolicyLiBRA       = sim.LiBRA
	PolicyBAFirst     = sim.BAFirst
	PolicyRAFirst     = sim.RAFirst
	PolicyOracleData  = sim.OracleData
	PolicyOracleDelay = sim.OracleDelay
)

// RunEntry replays one policy over one dataset entry's link break.
//
// Deprecated: use Run with Scenario{Entry: e}. This wrapper delegates to Run
// and panics on parameters Run would reject.
func RunEntry(e *Entry, p Params, pol Policy, clf Classifier) Outcome {
	res, err := Run(context.Background(), Scenario{Entry: e},
		RunOptions{Params: p, Policy: pol, Classifier: clf})
	if err != nil {
		panic(err)
	}
	return res.Outcome
}

// RunTimeline replays one policy over a multi-impairment timeline.
//
// Deprecated: use Run with Scenario{Timeline: tl}. This wrapper delegates to
// RunTimelineContext (the non-context/context pair delegates one way only)
// and panics on parameters Run would reject.
func RunTimeline(tl *Timeline, p Params, pol Policy, clf Classifier) TimelineResult {
	res, err := RunTimelineContext(context.Background(), tl, p, pol, clf)
	if err != nil {
		panic(err)
	}
	return res
}

// RunTimelineContext is RunTimeline with cooperative cancellation at
// timeline-segment boundaries: a canceled ctx abandons the remaining
// segments and returns ctx's error. A completed run matches RunTimeline's
// result exactly.
//
// Deprecated: use Run with Scenario{Timeline: tl}.
func RunTimelineContext(ctx context.Context, tl *Timeline, p Params, pol Policy, clf Classifier) (TimelineResult, error) {
	res, err := Run(ctx, Scenario{Timeline: tl},
		RunOptions{Params: p, Policy: pol, Classifier: clf})
	return res.Timeline, err
}

// NewScenarioPools builds the §8.3 timeline state pools.
func NewScenarioPools(seed int64) *ScenarioPools { return trace.NewPools(seed) }

// VR case study (§8.4).
type (
	// FrameTrace is a constant-FPS encoded video trace.
	FrameTrace = vr.FrameTrace
	// PlaybackResult holds VR stall statistics.
	PlaybackResult = vr.PlaybackResult
)

// VikingVillage synthesizes the §8.4 8K 60 FPS scene trace.
var VikingVillage = vr.VikingVillage

// PlayVR streams a frame trace over a delivered-rate profile.
var PlayVR = vr.Play

// Experiments.
type (
	// Suite shares generated campaigns and trained models across
	// experiment runs.
	Suite = experiments.Suite
)

// NewSuite creates an experiment suite with the given seed.
func NewSuite(seed int64) *Suite { return experiments.NewSuite(seed) }

// Model persistence: the §7 deployment story is offline training by the
// vendor, then shipping the fitted model. The on-disk format is versioned
// and serialization-stable — a one-line "libra-model v2 random-forest"
// header followed by the model body; saving a loaded model reproduces the
// input bytes, and the legacy headerless v1 format still loads. libra-train
// -o writes this format and libra-serve -model consumes it.

// SaveClassifier writes a trained classifier (random forest) to w in the
// versioned libra-model format.
func SaveClassifier(c Classifier, w io.Writer) error {
	mc, ok := c.(*core.MLClassifier)
	if !ok {
		return fmt.Errorf("libra: only trained ML classifiers serialize (got %s)", c.Name())
	}
	return core.SaveClassifier(mc, w)
}

// LoadClassifier reads a classifier written by SaveClassifier (either the
// current headered format or the legacy bare-JSON v1 format).
func LoadClassifier(r io.Reader) (Classifier, error) {
	return core.LoadClassifier(r)
}

// Extensions beyond the paper's evaluation.
type (
	// MarkovPredictor learns per-break action patterns (§7 future work).
	MarkovPredictor = predict.MarkovPredictor
	// AMPDUResult is an 802.11-style aggregated-frame outcome with SFER.
	AMPDUResult = mac.AMPDUResult
)

// NewMarkovPredictor creates an order-k link-pattern predictor.
func NewMarkovPredictor(order int) *MarkovPredictor { return predict.NewMarkovPredictor(order) }

// RunEntryRxInitiated replays a break under the Rx-initiated LiBRA variant
// (§7 design-choice ablation).
//
// Deprecated: use Run with RunOptions{Variant: VariantRxInitiated}.
var RunEntryRxInitiated = sim.RunEntryRxInitiated

// Multi-AP discrete-event engine.
type (
	// EngineSpec declares a multi-AP scenario: deployment size, topology,
	// adaptation parameters, contention/interference/impairment knobs.
	EngineSpec = engine.Spec
	// EngineScenario is the immutable precomputed form of an EngineSpec
	// (ray-traced snapshots, interference penalties); build once, run many.
	EngineScenario = engine.Scenario
	// Engine runs an EngineScenario deterministically: event traces and
	// the scenario digest are byte-identical for any worker count.
	Engine = engine.Engine
	// EngineResult is a completed engine run (per-station results,
	// aggregate counters, the scenario digest).
	EngineResult = engine.Result
	// StationResult is one station's engine-run summary.
	StationResult = engine.StationResult
)

// BuildScenario validates and precomputes a multi-AP scenario — the
// expensive ray-tracing step, run once per spec.
func BuildScenario(spec EngineSpec) (*EngineScenario, error) { return engine.Build(spec) }

// NewEngine creates a deterministic multi-AP engine over a built scenario
// with the given worker count (<=0 picks GOMAXPROCS). Workers change wall
// time only, never results.
func NewEngine(sc *EngineScenario, workers int) *Engine { return engine.New(sc, workers) }
